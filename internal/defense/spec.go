package defense

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/specstr"
)

// Spec declares one LLC countermeasure: a model family plus its
// parameters. The zero value of every model-specific field selects that
// model's documented default, so a Spec can stay sparse. Specs
// round-trip through JSON (scenario reports, sweep spec files) and
// through the compact spec-string syntax of Parse/String (the shared
// internal/specstr grammar).
type Spec struct {
	// Model names the family: partition, randomize, scatter or quiesce.
	Model string `json:"model"`

	// Ways is the partition model's attacker-region size: the number of
	// LLC/SF ways reserved for the attacker container's allocations;
	// the victim container and background tenants share the remaining
	// ways (default 4). It must leave at least one way on each side of
	// every partitioned structure — hierarchy.Config.Validate checks it
	// against the geometry.
	Ways int `json:"ways,omitempty"`

	// Period is the randomize model's rekey period in demand accesses:
	// after this many accesses the index-randomization key rotates,
	// remapping every set and orphaning resident lines, as a CEASER
	// epoch boundary does (default 100000).
	Period int `json:"period,omitempty"`

	// Quantum is the quiesce model's timer granularity in cycles: every
	// attacker-visible latency measurement is rounded up to a multiple
	// of it (default 512). Set it to 1 for a jitter-only quiesce.
	Quantum float64 `json:"quantum,omitempty"`
	// Jitter is the quiesce model's additional Gaussian measurement
	// noise, as a sigma in cycles, applied before quantization. Unlike
	// the other parameters its zero value is literal (no added noise),
	// so a sparse quiesce spec is purely quantizing.
	Jitter float64 `json:"jitter,omitempty"`
}

// Model parameter defaults (see the Spec field comments).
const (
	DefaultWays    = 4
	DefaultPeriod  = 100_000
	DefaultQuantum = 512.0
)

// WithDefaults returns a copy with every zero model-specific parameter
// replaced by its default. Jitter is never defaulted: zero (no added
// noise) is meaningful.
func (s Spec) WithDefaults() Spec {
	if s.Ways == 0 {
		s.Ways = DefaultWays
	}
	if s.Period == 0 {
		s.Period = DefaultPeriod
	}
	if s.Quantum == 0 {
		s.Quantum = DefaultQuantum
	}
	return s
}

// specKeys maps each model to the parameter keys it may set. Both input
// syntaxes enforce it: the spec-string parser per key, Validate (via
// inapplicable) on whole specs, including JSON ones.
var specKeys = map[string]map[string]bool{
	"partition": {"ways": true},
	"randomize": {"period": true},
	"scatter":   {},
	"quiesce":   {"quantum": true, "jitter": true},
}

// inapplicable returns the first non-zero model parameter that does not
// belong to the spec's model, or "" when the spec is clean. It must run
// on a RAW spec (before WithDefaults fills every field).
func (s Spec) inapplicable() string {
	keys := specKeys[s.Model]
	for _, p := range []struct {
		key string
		set bool
	}{
		{"ways", s.Ways != 0},
		{"period", s.Period != 0},
		{"quantum", s.Quantum != 0},
		{"jitter", s.Jitter != 0},
	} {
		if p.set && !keys[p.key] {
			return p.key
		}
	}
	return ""
}

// Validate rejects malformed specs: an unknown model, an out-of-range
// parameter, or a parameter set on a model it does not apply to (a raw
// Spec's zero means "default", so an inapplicable non-zero value can
// only be a mistake). Geometry cross-checks (partition ways against the
// host's associativities) live in hierarchy.Config.Validate, which
// knows the geometry.
func (s Spec) Validate() error {
	if _, ok := registry[s.Model]; !ok {
		return fmt.Errorf("defense: unknown model %q (known: %v)", s.Model, Models())
	}
	if key := s.inapplicable(); key != "" {
		return fmt.Errorf("defense: parameter %q does not apply to model %q", key, s.Model)
	}
	d := s.WithDefaults()
	switch {
	case d.Ways < 1:
		return fmt.Errorf("defense: %s: ways %d below 1", d.Model, d.Ways)
	case d.Period < 1:
		return fmt.Errorf("defense: %s: period %d below 1", d.Model, d.Period)
	case d.Quantum <= 0:
		return fmt.Errorf("defense: %s: quantum %g must be positive", d.Model, d.Quantum)
	case d.Jitter < 0:
		return fmt.Errorf("defense: %s: negative jitter %g", d.Model, d.Jitter)
	}
	return nil
}

// PartitionWays returns the attacker-region way count the spec's model
// would reserve (0 for non-partitioning models). hierarchy.Config uses
// it to size and validate the partitioned cache arrays without building
// the model.
func (s Spec) PartitionWays() int {
	if s.Model != "partition" {
		return 0
	}
	return s.WithDefaults().Ways
}

// Build validates the spec and constructs its model. The model still
// needs a Reset(seed) before use; hosts perform it when they build or
// recycle their defense state.
func (s Spec) Build() (Model, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return registry[s.Model].build(s.WithDefaults())
}

// String renders the spec in the compact form Parse accepts, listing
// only the parameters relevant to the model. Defaults are applied
// first, so a sparse spec renders its effective values and every String
// output round-trips through Parse. hierarchy.Config.Key embeds it, so
// equal-valued specs must render identically.
func (s Spec) String() string {
	s = s.WithDefaults()
	var b strings.Builder
	b.WriteString(s.Model)
	switch s.Model {
	case "partition":
		fmt.Fprintf(&b, ":ways=%d", s.Ways)
	case "randomize":
		fmt.Fprintf(&b, ":period=%d", s.Period)
	case "quiesce":
		fmt.Fprintf(&b, ":quantum=%s,jitter=%s",
			strconv.FormatFloat(s.Quantum, 'g', -1, 64),
			strconv.FormatFloat(s.Jitter, 'g', -1, 64))
	}
	return b.String()
}

// Parse reads one compact spec string: "model" alone, or
// "model:key=value,key=value" — e.g. "partition:ways=4" or
// "quiesce:quantum=256,jitter=20". Omitted keys take the model
// defaults; keys that do not belong to the model are rejected, so a
// typo cannot silently configure nothing.
func Parse(s string) (Spec, error) {
	name, rest, hasParams := specstr.Cut(s)
	spec := Spec{Model: name}
	if _, ok := registry[name]; !ok {
		return Spec{}, fmt.Errorf("defense: unknown model %q in spec %q (known: %v)", name, s, Models())
	}
	if hasParams {
		// Range-check explicit values at parse time: a zero in the struct
		// means "default", so an explicit bad zero (ways=0, quantum=0)
		// would otherwise be silently replaced instead of rejected.
		err := specstr.Params("defense", s, name, rest, func(key string, f float64) (known, bad bool) {
			if !specKeys[name][key] {
				return false, false
			}
			switch key {
			case "ways":
				spec.Ways, bad = int(f), f < 1 || f != math.Trunc(f)
			case "period":
				spec.Period, bad = int(f), f < 1 || f != math.Trunc(f)
			case "quantum":
				spec.Quantum, bad = f, f <= 0
			case "jitter":
				spec.Jitter, bad = f, f < 0
			}
			return true, bad
		})
		if err != nil {
			return Spec{}, err
		}
	}
	if err := spec.Validate(); err != nil {
		return Spec{}, err
	}
	return spec, nil
}

// ParseOpt reads an optional defense flag value: "" and "none" select
// no defense (a nil spec); anything else must be a valid Parse spec.
func ParseOpt(s string) (*Spec, error) {
	t := strings.TrimSpace(s)
	if t == "" || t == "none" {
		return nil, nil
	}
	sp, err := Parse(t)
	if err != nil {
		return nil, err
	}
	return &sp, nil
}
