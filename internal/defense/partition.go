package defense

func init() {
	register("partition",
		"CAT/DAWG-style way-partitioning: attacker allocations confined to `ways` LLC/SF ways, victim+tenants share the rest",
		func(s Spec) (Model, error) { return &partitionModel{ways: s.Ways}, nil })
}

// partitionModel reserves the first Ways ways of every LLC and SF set
// for the attacker container and confines every other domain (the
// victim container and background tenants) to the remaining ways —
// Intel CAT's class-of-service masks hardened into a DAWG-style
// security partition that also covers the Snoop Filter (partitioning
// the LLC alone would leave the paper's SF attack untouched). Lookups
// still hit anywhere; only allocation is regioned, which suffices:
// neither side can displace the other's entries, so the attacker's
// primes never observe victim activity.
//
// The model is stateless — the partition is enforced by the cache
// arrays the hierarchy builds around PartitionWays — so every hook
// beyond the two partition queries is the embedded no-op.
type partitionModel struct {
	nopModel
	ways int
}

// PartitionWays returns the attacker-region way count.
func (m *partitionModel) PartitionWays() int { return m.ways }

// Region confines the attacker domain to region 0; the victim and
// background tenants share region 1.
func (m *partitionModel) Region(d Domain) int {
	if d == DomainAttacker {
		return 0
	}
	return 1
}
