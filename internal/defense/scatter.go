package defense

import "repro/internal/xrand"

func init() {
	register("scatter",
		"ScatterCache-style per-domain skewed index derivation: attacker and victim see unrelated set mappings",
		func(Spec) (Model, error) { return &scatterModel{}, nil })
}

// scatterModel derives the LLC/SF set index from a keyed hash of the
// physical line address AND the accessing security domain, as
// ScatterCache keys its index derivation on the security domain ID:
// the attacker's notion of congruence (well-defined within its own
// domain, so its eviction sets still build and self-test) tells it
// nothing about which physical set a victim line occupies, and the
// page-offset structure its bulk construction sweeps is destroyed —
// the victim's target set is overwhelmingly likely to sit outside the
// sets the attacker can reach from the leaked page offset.
//
// The key is fixed per Reset (per trial): unlike randomize there is no
// epoch state, so the model is pure after Reset.
type scatterModel struct {
	nopModel
	key uint64
}

// Reset re-derives the skew key from seed.
func (m *scatterModel) Reset(seed uint64) { m.key = xrand.Stream(seed, 0x5ca7) }

// Index hashes the line address under the domain-specific key.
func (m *scatterModel) Index(d Domain, line uint64, slice, _, sets int) int {
	return keyedIndex(m.key^(uint64(d)+1)*domainSalt, slice, line, sets)
}
