package defense

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/xrand"
)

func TestRegistry(t *testing.T) {
	want := []string{"partition", "quiesce", "randomize", "scatter"}
	got := Models()
	if len(got) != len(want) {
		t.Fatalf("Models() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Models() = %v, want %v", got, want)
		}
	}
	if len(ModelList()) != len(want) {
		t.Error("ModelList and Models disagree")
	}
}

func TestSpecValidate(t *testing.T) {
	good := []Spec{
		{Model: "partition"},
		{Model: "partition", Ways: 2},
		{Model: "randomize", Period: 50},
		{Model: "scatter"},
		{Model: "quiesce", Quantum: 128, Jitter: 16},
	}
	for _, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v", s, err)
		}
		if _, err := s.Build(); err != nil {
			t.Errorf("Build(%+v) = %v", s, err)
		}
	}
	bad := []Spec{
		{Model: "moat"},
		{Model: "partition", Ways: -1},
		{Model: "randomize", Period: -5},
		{Model: "quiesce", Quantum: -1},
		{Model: "quiesce", Jitter: -2},
		// Inapplicable parameters are typos, not silent no-ops.
		{Model: "scatter", Ways: 4},
		{Model: "partition", Period: 100},
		{Model: "randomize", Quantum: 256},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", s)
		}
	}
}

func TestParseAndStringRoundTrip(t *testing.T) {
	for _, in := range []string{
		"partition", "partition:ways=2", "randomize:period=5000",
		"scatter", "quiesce", "quiesce:quantum=128,jitter=16",
	} {
		sp, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		back, err := Parse(sp.String())
		if err != nil {
			t.Fatalf("Parse(String(%q)) = Parse(%q): %v", in, sp.String(), err)
		}
		// WithDefaults normalizes both sides: String omits parameters
		// that do not apply to the model, which stay zero after Parse.
		if back.WithDefaults() != sp.WithDefaults() {
			t.Errorf("%q does not round-trip: %#v vs %#v", in, sp.WithDefaults(), back.WithDefaults())
		}
	}
}

func TestParseErrors(t *testing.T) {
	for in, wantSub := range map[string]string{
		"moat":                 `unknown model "moat"`,
		"partition:ways":       "malformed parameter",
		"partition:ways=x":     "bad value",
		"partition:period=100": `does not apply to model "partition"`,
		"partition:ways=0":     "ways out of range",
		"quiesce:quantum=0":    "quantum out of range",
		"randomize:period=1.5": "period out of range",
	} {
		if _, err := Parse(in); err == nil || !strings.Contains(err.Error(), wantSub) {
			t.Errorf("Parse(%q) = %v, want substring %q", in, err, wantSub)
		}
	}
}

func TestParseOpt(t *testing.T) {
	for _, in := range []string{"", "  ", "none"} {
		sp, err := ParseOpt(in)
		if sp != nil || err != nil {
			t.Errorf("ParseOpt(%q) = (%v, %v), want (nil, nil)", in, sp, err)
		}
	}
	sp, err := ParseOpt("partition:ways=3")
	if err != nil || sp == nil || sp.Ways != 3 {
		t.Fatalf("ParseOpt(partition:ways=3) = (%+v, %v)", sp, err)
	}
	if _, err := ParseOpt("bogus"); err == nil {
		t.Error("ParseOpt accepted an unknown model")
	}
}

func TestSpecJSONRejectsNothing(t *testing.T) {
	// Specs round-trip through JSON for reports and sweep files.
	sp := Spec{Model: "quiesce", Quantum: 128, Jitter: 8}
	data, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	var back Spec
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != sp {
		t.Fatalf("JSON round-trip: %+v vs %+v", sp, back)
	}
}

func TestPartitionRegions(t *testing.T) {
	m, err := Spec{Model: "partition", Ways: 3}.Build()
	if err != nil {
		t.Fatal(err)
	}
	m.Reset(1)
	if m.PartitionWays() != 3 {
		t.Fatalf("PartitionWays = %d, want 3", m.PartitionWays())
	}
	if m.Region(DomainAttacker) != 0 {
		t.Error("attacker must allocate in region 0")
	}
	if m.Region(DomainVictim) != 1 || m.Region(DomainOther) != 1 {
		t.Error("victim and tenants must share region 1")
	}
	// Index and Observe are the identity for partition.
	if m.Index(DomainAttacker, 0xabc0, 2, 17, 512) != 17 {
		t.Error("partition must not transform indices")
	}
	if m.Observe(xrand.New(1), 321) != 321 {
		t.Error("partition must not filter measurements")
	}
}

// modelSpecs is one buildable spec per family, used by the generic
// determinism subtests.
var modelSpecs = []Spec{
	{Model: "partition", Ways: 4},
	{Model: "randomize", Period: 64},
	{Model: "scatter"},
	{Model: "quiesce", Quantum: 256, Jitter: 8},
}

// TestModelDeterminismAndResetEquivalence pins the Reset contract: equal
// seeds reproduce identical behaviour, a reset model equals a fresh one,
// and different seeds genuinely change keyed models.
func TestModelDeterminismAndResetEquivalence(t *testing.T) {
	const sets = 512
	fingerprint := func(m Model, seed uint64) []int {
		m.Reset(seed)
		var out []int
		for i := 0; i < 400; i++ {
			line := uint64(i) << 6
			out = append(out, m.Index(DomainAttacker, line, i%4, i%sets, sets))
			out = append(out, m.Index(DomainVictim, line, i%4, i%sets, sets))
			m.Tick()
		}
		return out
	}
	equal := func(a, b []int) bool {
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	for _, sp := range modelSpecs {
		t.Run(sp.Model, func(t *testing.T) {
			m1, _ := sp.Build()
			m2, _ := sp.Build()
			f1 := fingerprint(m1, 99)
			if f2 := fingerprint(m2, 99); !equal(f1, f2) {
				t.Fatal("equal seeds must produce identical index streams")
			}
			// Reset-vs-fresh: reuse m1 after it ran, against a fresh build.
			if f3 := fingerprint(m1, 99); !equal(f1, f3) {
				t.Fatal("a reset model must replay exactly like a fresh one")
			}
			for i := 0; i < 512; i++ {
				if m1.Index(DomainAttacker, uint64(i)<<6, 0, i%sets, sets) != m2.Index(DomainAttacker, uint64(i)<<6, 0, i%sets, sets) {
					t.Fatal("Index must be pure between Ticks")
				}
			}
		})
	}
	// Keyed models must actually depend on the seed.
	for _, name := range []string{"randomize", "scatter"} {
		m, _ := Spec{Model: name}.Build()
		a := fingerprint(m, 1)
		if b := fingerprint(m, 2); equal(a, b) {
			t.Errorf("%s: different seeds produced identical mappings", name)
		}
	}
}

func TestRandomizeRekeyRotatesMapping(t *testing.T) {
	m, _ := Spec{Model: "randomize", Period: 10}.Build()
	m.Reset(7)
	const sets = 512
	before := make([]int, 64)
	for i := range before {
		before[i] = m.Index(DomainAttacker, uint64(i)<<6, 0, 0, sets)
	}
	for i := 0; i < 10; i++ {
		m.Tick()
	}
	changed := 0
	for i := range before {
		if m.Index(DomainAttacker, uint64(i)<<6, 0, 0, sets) != before[i] {
			changed++
		}
	}
	if changed < len(before)/2 {
		t.Fatalf("rekey moved only %d/%d lines", changed, len(before))
	}
}

func TestScatterSkewsDomainsApart(t *testing.T) {
	m, _ := Spec{Model: "scatter"}.Build()
	m.Reset(3)
	const sets = 512
	same := 0
	for i := 0; i < 256; i++ {
		line := uint64(i) << 6
		if m.Index(DomainAttacker, line, 1, 0, sets) == m.Index(DomainVictim, line, 1, 0, sets) {
			same++
		}
	}
	// Unrelated uniform mappings collide w.p. 1/sets; 256 lines should
	// see at most a few collisions.
	if same > 8 {
		t.Fatalf("attacker and victim mappings agree on %d/256 lines", same)
	}
}

func TestQuiesceObserve(t *testing.T) {
	m, _ := Spec{Model: "quiesce", Quantum: 256}.Build()
	m.Reset(1)
	rng := xrand.New(1)
	for in, want := range map[float64]float64{1: 256, 255: 256, 256: 256, 257: 512, 600: 768} {
		if got := m.Observe(rng, in); got != want {
			t.Errorf("Observe(%g) = %g, want %g", in, got, want)
		}
	}
	// Jitter-only quiesce draws from the given rng deterministically.
	j, _ := Spec{Model: "quiesce", Quantum: 1, Jitter: 20}.Build()
	j.Reset(1)
	a := j.Observe(xrand.New(5), 300)
	b := j.Observe(xrand.New(5), 300)
	if a != b {
		t.Error("jitter draws must be deterministic in the rng stream")
	}
	if a == 300 {
		t.Error("jitter should perturb the measurement")
	}
}

// TestHooksOfHonest pins the devirtualization contract: any hook
// HooksOf reports as skippable must be an identity/no-op/non-drawing
// passthrough for that model. The hierarchy relies on this to elide
// virtual calls on the access path without changing a single draw.
func TestHooksOfHonest(t *testing.T) {
	specs := []Spec{
		{Model: "partition", Ways: 4},
		{Model: "randomize", Period: 100},
		{Model: "scatter"},
		{Model: "quiesce", Quantum: 64, Jitter: 8},
	}
	for _, sp := range specs {
		m, err := sp.Build()
		if err != nil {
			t.Fatalf("%s: %v", sp.Model, err)
		}
		m.Reset(7)
		hooks := HooksOf(m)
		lines := xrand.New(21)
		for i := 0; i < 200; i++ {
			line := lines.Uint64() &^ 0x3f
			slice := int(lines.Uint64() % 4)
			base := int(lines.Uint64() % 1024)
			d := Domain(lines.Uint64() % 3)
			if !hooks.Index {
				if got := m.Index(d, line, slice, base, 1024); got != base {
					t.Fatalf("%s: Hooks.Index=false but Index(%v, %#x) = %d != base %d",
						sp.Model, d, line, got, base)
				}
			}
			if !hooks.Observe {
				probe := xrand.New(33)
				before := probe.Uint64()
				probe.Seed(33)
				if got := m.Observe(probe, 123.5); got != 123.5 {
					t.Fatalf("%s: Hooks.Observe=false but Observe transformed the measurement to %g", sp.Model, got)
				}
				if probe.Uint64() != before {
					t.Fatalf("%s: Hooks.Observe=false but Observe drew from rng", sp.Model)
				}
			}
		}
		if !hooks.Tick {
			// Ticking must not change any observable mapping.
			wantIdx := m.Index(DomainAttacker, 0x1000, 0, 5, 1024)
			for i := 0; i < 1000; i++ {
				m.Tick()
			}
			if got := m.Index(DomainAttacker, 0x1000, 0, 5, 1024); got != wantIdx {
				t.Fatalf("%s: Hooks.Tick=false but 1000 ticks moved Index %d -> %d", sp.Model, wantIdx, got)
			}
		}
	}
	if h := HooksOf(nil); h.Tick || h.Index || h.Observe {
		t.Fatalf("HooksOf(nil) = %+v, want all false", h)
	}
}
