package defense

import "repro/internal/xrand"

func init() {
	register("randomize",
		"CEASER-style keyed index randomization, rekeyed every `period` accesses (rekeys orphan resident lines)",
		func(s Spec) (Model, error) { return &randomizeModel{period: uint64(s.Period)}, nil })
}

// randomizeModel derives every LLC/SF set index from a keyed hash of
// the physical line address instead of the address bits directly, as
// CEASER encrypts line addresses before indexing: congruence becomes a
// property of the current key, page-offset structure stops constraining
// the reachable sets, and eviction sets the attacker assembled under
// one key dissolve at the next rekey. Every `period` demand accesses
// the key rotates to the next output of the seed's splitmix stream;
// resident lines are left in place under their old index — unreachable
// until natural eviction, the simulation-level analogue of a remap
// epoch's miss storm (real CEASER amortizes the same cost over a
// gradual relocation window).
//
// All domains share the mapping (randomize isolates by obscurity, not
// by domain); Tick carries the only mutable state, so Index stays pure
// for privileged ground-truth queries.
type randomizeModel struct {
	nopModel
	period uint64

	seed  uint64
	epoch uint64
	ctr   uint64
	key   uint64
}

// Reset re-derives the key schedule's root from seed and restarts the
// first epoch.
func (m *randomizeModel) Reset(seed uint64) {
	m.seed = seed
	m.epoch = 0
	m.ctr = 0
	m.key = xrand.Stream(seed, 0)
}

// Tick counts demand accesses and rotates the key at epoch boundaries.
func (m *randomizeModel) Tick() {
	m.ctr++
	if m.ctr >= m.period {
		m.ctr = 0
		m.epoch++
		m.key = xrand.Stream(m.seed, m.epoch)
	}
}

// Index hashes the line address under the current epoch key.
func (m *randomizeModel) Index(_ Domain, line uint64, slice, _, sets int) int {
	return keyedIndex(m.key, slice, line, sets)
}
