package defense

import (
	"math"

	"repro/internal/xrand"
)

func init() {
	register("quiesce",
		"noisy probe feedback: latency measurements rounded up to `quantum` cycles, optionally Gaussian-jittered (`jitter`)",
		func(s Spec) (Model, error) { return &quiesceModel{quantum: s.Quantum, jitter: s.Jitter}, nil })
}

// quiesceModel degrades the attacker's measurement channel instead of
// the cache organisation: every rdtsc-delimited latency the hierarchy
// reports (timed single accesses and timed parallel probe batches) is
// optionally blurred by Gaussian noise and then rounded UP to the timer
// quantum, modelling coarse timer hardware (the timer returns the tick
// after the event completes) — the standard browser/cloud mitigation.
// The attack's two latency codes both live below ~450 cycles on the
// simulated host (single-access LLC~134 vs DRAM~370 for eviction-set
// construction; quiescent~180 vs one-miss~420 parallel-probe batches
// for monitoring), so the default 512-cycle quantum folds BOTH into one
// bucket and the whole toolkit — construction, scanning, probing —
// loses its signal, while a 256-cycle quantum preserves both codes
// across bucket boundaries and is nearly harmless: the quantum knob
// sweeps the defense from benign to total across that sharp threshold.
//
// Cache state is untouched, so Index and the partition hooks are the
// embedded no-ops; jitter draws come from the host stream in
// measurement order (the determinism contract's Observe clause).
type quiesceModel struct {
	nopModel
	quantum float64
	jitter  float64
}

// Observe blurs and quantizes one latency measurement.
func (m *quiesceModel) Observe(rng *xrand.Rand, measured float64) float64 {
	if m.jitter > 0 {
		measured = rng.Norm(measured, m.jitter)
		if measured < 1 {
			measured = 1
		}
	}
	if m.quantum > 0 {
		measured = math.Ceil(measured/m.quantum) * m.quantum
	}
	return measured
}
