// Package defense models pluggable LLC countermeasures: hardware or
// hypervisor mechanisms a cloud host could deploy against the
// cross-tenant cache attacks this repository reproduces. Each
// countermeasure is a Model built from a declarative Spec (mirroring
// internal/tenant) and plugged into the simulated hierarchy at three
// narrow points:
//
//   - the LLC/SF set-index derivation (Index), where keyed
//     randomization and per-domain skews live;
//   - way allocation (PartitionWays/Region), where CAT/DAWG-style
//     partitions between security domains live;
//   - the attacker-visible timing measurement (Observe), where
//     quantized or jittered probe feedback lives.
//
// Shipped models: partition (way-partitioning between the attacker's
// and the victim's security domains), randomize (CEASER-style keyed
// index randomization with periodic rekeying), scatter
// (ScatterCache-style per-domain skewed index derivation) and quiesce
// (quantized/jittered hit-miss timing).
//
// # Determinism contract
//
// A model participates in the simulator's byte-level reproducibility
// exactly as tenant models do:
//
//   - All keyed state (randomization keys, skew keys, rekey epochs)
//     derives from the seed passed to Reset — never from the host RNG —
//     so enabling a defense cannot perturb the host's own stream order.
//   - Index is pure: privileged ground-truth queries may call it any
//     number of times without changing behaviour. Per-access state
//     (rekey counters) advances only in Tick, which the hierarchy calls
//     exactly once per demand access.
//   - Observe draws jitter (when configured) from the rng argument (the
//     host stream); the draw order is fixed by the deterministic
//     measurement sequence of the simulation.
//   - Reset must restore the exact post-construction state and stay
//     allocation-free, so pooled hosts can recycle defense state across
//     trials (the hierarchy.Host.Reset contract).
package defense

import (
	"fmt"
	"sort"

	"repro/internal/xrand"
)

// Domain is the security domain of one access, as the host's isolation
// mechanism sees it: which tenant container issued it. The simulated
// hierarchy maps its fixed core layout onto domains (cores 0-1 are the
// first container — the attacker's main and helper threads — and every
// other core belongs to the co-located victim container); background
// tenant interference carries its own domain.
type Domain uint8

// Security domains.
const (
	// DomainAttacker is the first container's domain (cores 0 and 1).
	DomainAttacker Domain = iota
	// DomainVictim is the co-located victim container's domain (every
	// other core).
	DomainVictim
	// DomainOther is the background-tenant domain (internal/tenant
	// interference replayed by the host's lazy noise sync).
	DomainOther
)

// String names the domain.
func (d Domain) String() string {
	switch d {
	case DomainAttacker:
		return "attacker"
	case DomainVictim:
		return "victim"
	case DomainOther:
		return "other"
	default:
		return "unknown"
	}
}

// Model is one LLC countermeasure. The hierarchy consults it on every
// shared-structure access; models answer from Reset-seeded state only
// (see the package determinism contract). Models that do not use a hook
// implement it as the identity/no-op.
type Model interface {
	// PartitionWays returns the number of LLC/SF ways reserved for the
	// attacker-domain allocation region, or 0 when the model does not
	// partition ways. It is fixed for the model's lifetime: the
	// hierarchy builds its shared cache arrays around it.
	PartitionWays() int
	// Region maps a domain to its way-allocation region: 0 is the
	// attacker region ([0, PartitionWays) ways), 1 the shared region
	// (the remaining ways). Only meaningful when PartitionWays() > 0.
	Region(d Domain) int
	// Index derives the defended per-slice set index for one access:
	// d is the accessing domain, line the physical line address, slice
	// and base the undefended slice/set coordinates, and sets the
	// per-slice set count (a power of two). Index must be pure — the
	// hierarchy also uses it for privileged ground-truth resolution.
	Index(d Domain, line uint64, slice, base, sets int) int
	// Observe filters one attacker-visible timing measurement (cycles),
	// modelling quantized or noisy timer feedback. rng is the host
	// stream; models that do not draw from it must not touch it.
	Observe(rng *xrand.Rand, measured float64) float64
	// Tick advances per-access state (rekey counters); the hierarchy
	// calls it exactly once per demand access.
	Tick()
	// Reset re-derives all internal state from seed, as if the model
	// had just been built. It must be allocation-free: pooled hosts
	// call it once per recycled trial.
	Reset(seed uint64)
}

// nopModel provides identity implementations for every hook; concrete
// models embed it and override what they use.
type nopModel struct{}

func (nopModel) PartitionWays() int                              { return 0 }
func (nopModel) Region(Domain) int                               { return 1 }
func (nopModel) Index(_ Domain, _ uint64, _, base, _ int) int    { return base }
func (nopModel) Observe(_ *xrand.Rand, measured float64) float64 { return measured }
func (nopModel) Tick()                                           {}
func (nopModel) Reset(uint64)                                    {}

// Hooks reports which per-access hooks of a Model can have observable
// effects. The hierarchy resolves it once at host-build time and skips
// the virtual call for every hook flagged false: a skipped hook is
// guaranteed to be the identity (Index), a no-op (Tick), or a
// passthrough that never touches rng (Observe), so skipping it cannot
// change any simulated state or random draw.
type Hooks struct {
	// Tick is true when Tick mutates per-access state (rekey counters).
	Tick bool
	// Index is true when Index is not the identity on the base set index.
	Index bool
	// Observe is true when Observe transforms measurements or draws from
	// the host rng.
	Observe bool
}

// HooksOf resolves the hook needs of the shipped model kinds. Models
// this package does not know conservatively get every hook enabled.
func HooksOf(m Model) Hooks {
	switch m.(type) {
	case nil:
		return Hooks{}
	case *partitionModel:
		return Hooks{}
	case *randomizeModel:
		return Hooks{Tick: true, Index: true}
	case *scatterModel:
		return Hooks{Index: true}
	case *quiesceModel:
		return Hooks{Observe: true}
	default:
		return Hooks{Tick: true, Index: true, Observe: true}
	}
}

// modelInfo is one registry entry.
type modelInfo struct {
	name  string
	desc  string
	build func(Spec) (Model, error)
}

var registry = map[string]modelInfo{}

// register adds a model family to the registry; called from the model
// files' init functions. Duplicate names are programming errors.
func register(name, desc string, build func(Spec) (Model, error)) {
	if _, dup := registry[name]; dup {
		panic("defense: duplicate model " + name)
	}
	registry[name] = modelInfo{name: name, desc: desc, build: build}
}

// Models returns the sorted names of all registered model families.
func Models() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ModelList returns "name  description" lines for every model family,
// sorted by name (the -list output of the CLIs).
func ModelList() []string {
	names := Models()
	out := make([]string, len(names))
	for i, name := range names {
		out[i] = fmt.Sprintf("%-10s %s", name, registry[name].desc)
	}
	return out
}

// Salts decorrelating the keyed index hashes' inputs (arbitrary odd
// constants; the domain salt offsets by one so DomainAttacker's zero
// value still contributes).
const (
	sliceSalt  = 0x9e37_79b9_7f4a_7c15
	domainSalt = 0xc2b2_ae3d_27d4_eb4f
)

// keyedIndex maps (key, slice, line) onto [0, sets) through the
// splitmix64 stream — the shared primitive of the randomize and scatter
// models. sets must be a power of two (the hierarchy guarantees it).
func keyedIndex(key uint64, slice int, line uint64, sets int) int {
	return int(xrand.Stream(key^uint64(slice)*sliceSalt, line) & uint64(sets-1))
}
