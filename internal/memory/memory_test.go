package memory

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func newHost(t testing.TB) *Host {
	t.Helper()
	return NewHost(64<<20, xrand.New(1))
}

func TestPageOffsetPreserved(t *testing.T) {
	h := newHost(t)
	as := NewAddressSpace(h)
	base := as.Map(16)
	f := func(page uint8, off uint16) bool {
		va := base + VAddr(uint64(page%16)<<PageBits|uint64(off%PageSize))
		pa := as.Translate(va)
		return pa.PageOffset() == va.PageOffset()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistinctPagesDistinctFrames(t *testing.T) {
	h := newHost(t)
	as := NewAddressSpace(h)
	base := as.Map(256)
	seen := map[uint64]bool{}
	for p := 0; p < 256; p++ {
		fr := as.Translate(base + VAddr(p<<PageBits)).FrameNumber()
		if seen[fr] {
			t.Fatalf("frame %d reused", fr)
		}
		seen[fr] = true
	}
}

func TestFramesLookRandom(t *testing.T) {
	h := newHost(t)
	as := NewAddressSpace(h)
	base := as.Map(64)
	ascending := 0
	prev := uint64(0)
	for p := 0; p < 64; p++ {
		fr := as.Translate(base + VAddr(p<<PageBits)).FrameNumber()
		if fr == prev+1 {
			ascending++
		}
		prev = fr
	}
	if ascending > 8 {
		t.Fatalf("%d consecutive frames: allocation not randomized", ascending)
	}
}

func TestSeparateAddressSpaces(t *testing.T) {
	h := newHost(t)
	a, b := NewAddressSpace(h), NewAddressSpace(h)
	va, vb := a.Map(4), b.Map(4)
	for p := 0; p < 4; p++ {
		fa := a.Translate(va + VAddr(p<<PageBits)).FrameNumber()
		fb := b.Translate(vb + VAddr(p<<PageBits)).FrameNumber()
		if fa == fb {
			t.Fatal("two address spaces share a frame")
		}
	}
}

func TestUnmappedPanics(t *testing.T) {
	h := newHost(t)
	as := NewAddressSpace(h)
	defer func() {
		if recover() == nil {
			t.Fatal("expected a panic on unmapped access")
		}
	}()
	as.Translate(0xdead000)
}

func TestBufferLineAt(t *testing.T) {
	h := newHost(t)
	as := NewAddressSpace(h)
	buf := as.Alloc(4)
	va := buf.LineAt(2, 0x340)
	if va.PageOffset() != 0x340 {
		t.Fatalf("offset = %#x", va.PageOffset())
	}
	if va.PageNumber() != buf.Base.PageNumber()+2 {
		t.Fatal("wrong page")
	}
	if buf.Size() != 4*PageSize {
		t.Fatalf("size = %d", buf.Size())
	}
}

func TestBufferBoundsPanic(t *testing.T) {
	h := newHost(t)
	as := NewAddressSpace(h)
	buf := as.Alloc(2)
	for _, fn := range []func(){
		func() { buf.LineAt(2, 0) },    // page out of range
		func() { buf.LineAt(0, 4096) }, // offset out of range
		func() { buf.LineAt(0, 33) },   // not line aligned
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestAddrHelpers(t *testing.T) {
	pa := PAddr(0x12345f7)
	if pa.Line() != 0x12345c0 {
		t.Fatalf("line = %#x", uint64(pa.Line()))
	}
	if pa.PageOffset() != 0x5f7 {
		t.Fatalf("page offset = %#x", pa.PageOffset())
	}
	va := VAddr(0xabcd123)
	if va.LineOffset() != 0x23 {
		t.Fatalf("line offset = %#x", va.LineOffset())
	}
}

func TestGuardGapBetweenMappings(t *testing.T) {
	h := newHost(t)
	as := NewAddressSpace(h)
	a := as.Map(2)
	b := as.Map(2)
	if b <= a+2*PageSize {
		t.Fatal("mappings not separated by a guard page")
	}
	if as.Mapped(a + 2*PageSize) {
		t.Fatal("guard page should be unmapped")
	}
	if as.PageCount() != 4 {
		t.Fatalf("page count = %d", as.PageCount())
	}
}

func TestHostResetReplaysFrameOrder(t *testing.T) {
	fresh := NewHost(1<<20, xrand.New(3))
	reused := NewHost(1<<20, xrand.New(44))
	NewAddressSpace(reused).Map(17) // consume some frames
	reused.Reset(xrand.New(3))

	fa := NewAddressSpace(fresh)
	ra := NewAddressSpace(reused)
	fb, rb := fa.Map(32), ra.Map(32)
	for p := 0; p < 32; p++ {
		fpa := fa.Translate(fb + VAddr(p<<PageBits))
		rpa := ra.Translate(rb + VAddr(p<<PageBits))
		if fpa != rpa {
			t.Fatalf("page %d: fresh frame %#x != reset frame %#x", p, fpa, rpa)
		}
	}
}
