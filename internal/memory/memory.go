// Package memory models physical memory and virtual address translation
// for the simulated host.
//
// The attacker in the paper is an unprivileged container user: it controls
// the low 12 bits of every address (the 4 kB page offset) but has no
// knowledge or control over which physical frame backs each virtual page.
// This package reproduces that constraint: virtual pages map to physical
// frames chosen pseudo-randomly from the host's frame pool, and only the
// privileged simulator (not attack code) can inspect a physical address.
package memory

import (
	"fmt"

	"repro/internal/xrand"
)

// Address geometry constants shared across the repository.
const (
	// LineBits is log2 of the 64 B cache line size.
	LineBits = 6
	// LineSize is the cache line size in bytes.
	LineSize = 1 << LineBits
	// PageBits is log2 of the standard 4 kB page size. Cloud Run
	// containers cannot allocate huge pages (paper §3), so 4 kB pages
	// are the only mapping granularity.
	PageBits = 12
	// PageSize is the page size in bytes.
	PageSize = 1 << PageBits
	// LinesPerPage is the number of cache lines in one page (64).
	LinesPerPage = PageSize / LineSize
)

// VAddr is a virtual address within one process's address space.
type VAddr uint64

// PAddr is a physical address on the host. Attack code must never branch
// on a PAddr; only the simulator and validation code may inspect it.
type PAddr uint64

// PageOffset returns the low 12 bits (shared between VA and PA).
func (v VAddr) PageOffset() uint64 { return uint64(v) & (PageSize - 1) }

// LineOffset returns the low 6 bits within the cache line.
func (v VAddr) LineOffset() uint64 { return uint64(v) & (LineSize - 1) }

// PageNumber returns the virtual page number.
func (v VAddr) PageNumber() uint64 { return uint64(v) >> PageBits }

// PageOffset returns the low 12 bits of the physical address.
func (p PAddr) PageOffset() uint64 { return uint64(p) & (PageSize - 1) }

// Line returns the physical line address (low 6 bits cleared).
func (p PAddr) Line() PAddr { return p &^ (LineSize - 1) }

// FrameNumber returns the physical frame number.
func (p PAddr) FrameNumber() uint64 { return uint64(p) >> PageBits }

// Host models the physical memory of one machine: a pool of frames that
// address spaces draw from at page-fault time.
type Host struct {
	frames     uint64 // total number of 4 kB frames
	rng        *xrand.Rand
	freeList   []uint64
	nextVictim int // index into freeList for sequential carve-outs
}

// NewHost creates a host with the given physical memory size in bytes.
// Frames are handed out in a pseudo-random order, reproducing the fact
// that a container's pages land on effectively arbitrary frames.
func NewHost(bytes uint64, rng *xrand.Rand) *Host {
	if bytes < PageSize {
		panic("memory: host smaller than one page")
	}
	n := bytes / PageSize
	h := &Host{frames: n, rng: rng}
	h.freeList = make([]uint64, n)
	for i := range h.freeList {
		h.freeList[i] = uint64(i)
	}
	// Fisher-Yates over the frame pool; allocation order is then random.
	for i := len(h.freeList) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		h.freeList[i], h.freeList[j] = h.freeList[j], h.freeList[i]
	}
	return h
}

// Frames returns the number of physical frames on the host.
func (h *Host) Frames() uint64 { return h.frames }

// Reset returns every frame to the pool and reshuffles it with rng,
// restoring the state NewHost would produce with the same size and rng.
// Address spaces created before the reset are invalidated — their pages
// may alias newly handed-out frames — so callers must rebuild them.
func (h *Host) Reset(rng *xrand.Rand) {
	h.rng = rng
	h.nextVictim = 0
	for i := range h.freeList {
		h.freeList[i] = uint64(i)
	}
	for i := len(h.freeList) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		h.freeList[i], h.freeList[j] = h.freeList[j], h.freeList[i]
	}
}

// allocFrame pops one random frame from the pool.
func (h *Host) allocFrame() uint64 {
	if h.nextVictim >= len(h.freeList) {
		panic("memory: host out of physical frames")
	}
	f := h.freeList[h.nextVictim]
	h.nextVictim++
	return f
}

// vaBase is the first virtual page number handed out by every address
// space (a typical mmap-ish base). Pages are bump-allocated upward from
// it, so vpn-vaBase densely indexes the page table below.
const vaBase = 0x5600_0000_0000 >> PageBits

// AddressSpace is one process's (container's) virtual address space with
// demand-populated, randomly backed pages.
//
// The page table is a flat slice indexed by vpn-vaBase rather than a map:
// Map only ever bump-allocates contiguous ranges (with one-page guard
// gaps), so the table is dense and Translate — the single hottest
// per-access operation in the simulator — is an indexed load instead of a
// hash lookup. Entries store frame+1; 0 marks an unmapped (or guard)
// page.
type AddressSpace struct {
	host     *Host
	table    []uint64 // vpn-vaBase -> frame+1 (0 = unmapped)
	mapped   int      // number of mapped pages
	nextPage uint64   // bump allocator for fresh virtual pages
}

// NewAddressSpace creates an empty address space on the host. The base
// virtual page is offset per address space so that different processes
// use disjoint VA ranges (useful for debugging traces).
func NewAddressSpace(h *Host) *AddressSpace {
	return &AddressSpace{host: h, nextPage: vaBase}
}

// Map allocates n fresh contiguous virtual pages backed by random physical
// frames, and returns the base virtual address.
func (as *AddressSpace) Map(n int) VAddr {
	if n <= 0 {
		panic("memory: Map with non-positive page count")
	}
	base := as.nextPage
	for i := 0; i < n; i++ {
		as.table = append(as.table, as.host.allocFrame()+1)
	}
	as.table = append(as.table, 0) // guard page gap
	as.mapped += n
	as.nextPage += uint64(n) + 1
	return VAddr(base << PageBits)
}

// Translate converts a virtual address to its physical address. It panics
// on an unmapped page — the simulation equivalent of a segfault.
func (as *AddressSpace) Translate(v VAddr) PAddr {
	idx := v.PageNumber() - vaBase
	if idx >= uint64(len(as.table)) || as.table[idx] == 0 {
		panic(fmt.Sprintf("memory: access to unmapped page at %#x", uint64(v)))
	}
	return PAddr((as.table[idx]-1)<<PageBits | v.PageOffset())
}

// Mapped reports whether the page containing v is mapped.
func (as *AddressSpace) Mapped(v VAddr) bool {
	idx := v.PageNumber() - vaBase
	return idx < uint64(len(as.table)) && as.table[idx] != 0
}

// PageCount returns the number of mapped pages.
func (as *AddressSpace) PageCount() int { return as.mapped }

// Buffer is a convenience wrapper representing a contiguous virtual
// allocation used for candidate addresses.
type Buffer struct {
	Base  VAddr
	Pages int
}

// Alloc maps a buffer of the given number of pages.
func (as *AddressSpace) Alloc(pages int) Buffer {
	return Buffer{Base: as.Map(pages), Pages: pages}
}

// LineAt returns the virtual address of the cache line with the given page
// index and page offset inside the buffer. offset must be line-aligned and
// < PageSize.
func (b Buffer) LineAt(page int, offset uint64) VAddr {
	if page < 0 || page >= b.Pages {
		panic("memory: page index out of buffer")
	}
	if offset >= PageSize || offset%LineSize != 0 {
		panic("memory: bad line offset")
	}
	return b.Base + VAddr(uint64(page)<<PageBits|offset)
}

// Size returns the buffer size in bytes.
func (b Buffer) Size() uint64 { return uint64(b.Pages) * PageSize }
