// Package model is the reference oracle for internal/cache: a slow,
// obviously-correct implementation of set-associative lookup, insertion,
// way-partitioned allocation and every replacement policy, kept
// deliberately naive (one heap object per set, interface-dispatched
// policy state) so its behaviour is easy to audit by eye.
//
// It is the pre-optimization cache implementation, preserved verbatim.
// The optimized flat-array cache in the parent package must match it
// op-for-op on arbitrary operation sequences; oracle_test.go enforces
// that with fuzzed scripts and metamorphic invariants. Simulation code
// must never import this package — it exists only to license changes to
// the hot path.
package model

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/xrand"
)

// Set is one associative set: ways tagged lines plus replacement state and
// an optional per-way payload. In a way-partitioned cache the replacement
// state is split per region: pol governs ways [0, split) and pol2 ways
// [split, ways), each an independent policy instance of its region's
// size; unpartitioned sets keep pol over the whole set and a nil pol2.
type Set struct {
	tags    []cache.Tag
	valid   []bool
	payload []uint8
	pol     policyState
	pol2    policyState
}

// Cache is the reference cache array. It mirrors the public API of
// cache.Cache exactly, including panic messages.
type Cache struct {
	name  string
	sets  []Set
	ways  int
	nsets int
	split int
}

// New builds a reference cache from the same Config the optimized
// implementation takes.
func New(cfg cache.Config, rng *xrand.Rand) *Cache {
	if cfg.Sets <= 0 || cfg.Ways <= 0 {
		panic(fmt.Sprintf("cache %q: invalid geometry %d sets x %d ways", cfg.Name, cfg.Sets, cfg.Ways))
	}
	if cfg.PartitionAt < 0 || cfg.PartitionAt >= cfg.Ways {
		panic(fmt.Sprintf("cache %q: partition at %d outside (0, %d)", cfg.Name, cfg.PartitionAt, cfg.Ways))
	}
	c := &Cache{name: cfg.Name, ways: cfg.Ways, nsets: cfg.Sets, split: cfg.PartitionAt}
	c.sets = make([]Set, cfg.Sets)
	for i := range c.sets {
		s := Set{
			tags:    make([]cache.Tag, cfg.Ways),
			valid:   make([]bool, cfg.Ways),
			payload: make([]uint8, cfg.Ways),
		}
		if c.split > 0 {
			s.pol = newPolicyState(cfg.Policy, c.split, rng)
			s.pol2 = newPolicyState(cfg.Policy, cfg.Ways-c.split, rng)
		} else {
			s.pol = newPolicyState(cfg.Policy, cfg.Ways, rng)
		}
		c.sets[i] = s
	}
	return c
}

// Split returns the way-partition boundary (0 = unpartitioned).
func (c *Cache) Split() int { return c.split }

// touch records a hit on way w against the owning region's policy.
func (s *Set) touch(split, w int) {
	if split > 0 && w >= split {
		s.pol2.touch(w - split)
		return
	}
	s.pol.touch(w)
}

// fill records an insertion into way w against the owning region's
// policy.
func (s *Set) fill(split, w int) {
	if split > 0 && w >= split {
		s.pol2.insert(w - split)
		return
	}
	s.pol.insert(w)
}

// regionBounds returns the way range [lo, hi) a region may allocate in.
func (c *Cache) regionBounds(region int) (lo, hi int) {
	if c.split == 0 {
		return 0, c.ways
	}
	switch region {
	case 0:
		return 0, c.split
	case 1:
		return c.split, c.ways
	default:
		panic(fmt.Sprintf("cache %q: unregioned insert into a partitioned cache", c.name))
	}
}

// regionVictim selects the eviction victim within the region's ways per
// the region's own policy instance.
func (c *Cache) regionVictim(s *Set, lo int) int {
	if c.split > 0 && lo == c.split {
		return c.split + s.pol2.victim()
	}
	return lo + s.pol.victim()
}

// Name returns the configured name.
func (c *Cache) Name() string { return c.name }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.nsets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// set returns the set at index i, panicking on out-of-range indices.
func (c *Cache) set(i int) *Set {
	if i < 0 || i >= c.nsets {
		panic(fmt.Sprintf("cache %q: set index %d out of range [0,%d)", c.name, i, c.nsets))
	}
	return &c.sets[i]
}

// Lookup probes set idx for tag. On a hit it updates replacement state and
// returns the way's payload.
func (c *Cache) Lookup(idx int, tag cache.Tag) (payload uint8, hit bool) {
	s := c.set(idx)
	for w, v := range s.valid {
		if v && s.tags[w] == tag {
			s.touch(c.split, w)
			return s.payload[w], true
		}
	}
	return 0, false
}

// Contains reports whether tag is present without touching replacement
// state.
func (c *Cache) Contains(idx int, tag cache.Tag) bool {
	s := c.set(idx)
	for w, v := range s.valid {
		if v && s.tags[w] == tag {
			return true
		}
	}
	return false
}

// Insert fills tag into set idx, evicting a line if the set is full.
func (c *Cache) Insert(idx int, tag cache.Tag, payload uint8) cache.Evicted {
	return c.InsertRegion(-1, idx, tag, payload)
}

// InsertRegion is Insert with allocation confined to one region of a
// way-partitioned cache. Hits anywhere in the set still update in place —
// residency is set-wide, only allocation is regioned.
func (c *Cache) InsertRegion(region, idx int, tag cache.Tag, payload uint8) cache.Evicted {
	s := c.set(idx)
	lo, hi := c.regionBounds(region)
	// Already present: update in place.
	for w, v := range s.valid {
		if v && s.tags[w] == tag {
			s.payload[w] = payload
			s.touch(c.split, w)
			return cache.Evicted{}
		}
	}
	// Free way available within the region.
	for w := lo; w < hi; w++ {
		if !s.valid[w] {
			s.tags[w] = tag
			s.valid[w] = true
			s.payload[w] = payload
			s.fill(c.split, w)
			return cache.Evicted{}
		}
	}
	// Evict per the region's policy.
	w := c.regionVictim(s, lo)
	out := cache.Evicted{Tag: s.tags[w], Payload: s.payload[w], Valid: true}
	s.tags[w] = tag
	s.payload[w] = payload
	s.fill(c.split, w)
	return out
}

// UpdatePayload changes the payload of a resident line without touching
// replacement state.
func (c *Cache) UpdatePayload(idx int, tag cache.Tag, payload uint8) bool {
	s := c.set(idx)
	for w, v := range s.valid {
		if v && s.tags[w] == tag {
			s.payload[w] = payload
			return true
		}
	}
	return false
}

// Remove invalidates tag in set idx, reporting whether it was present.
func (c *Cache) Remove(idx int, tag cache.Tag) (payload uint8, removed bool) {
	s := c.set(idx)
	for w, v := range s.valid {
		if v && s.tags[w] == tag {
			s.valid[w] = false
			return s.payload[w], true
		}
	}
	return 0, false
}

// OccupiedWays returns how many ways of set idx hold valid lines.
func (c *Cache) OccupiedWays(idx int) int {
	s := c.set(idx)
	n := 0
	for _, v := range s.valid {
		if v {
			n++
		}
	}
	return n
}

// TagsIn returns the valid tags in set idx.
func (c *Cache) TagsIn(idx int) []cache.Tag {
	s := c.set(idx)
	var out []cache.Tag
	for w, v := range s.valid {
		if v {
			out = append(out, s.tags[w])
		}
	}
	return out
}

// FlushSet invalidates every line in set idx and resets replacement state.
func (c *Cache) FlushSet(idx int) {
	s := c.set(idx)
	for w := range s.valid {
		s.valid[w] = false
	}
	s.pol.reset()
	if s.pol2 != nil {
		s.pol2.reset()
	}
}

// FlushAll invalidates the whole cache.
func (c *Cache) FlushAll() {
	for i := range c.sets {
		c.FlushSet(i)
	}
}

// Reset restores the cache to the state New would produce with rng.
func (c *Cache) Reset(rng *xrand.Rand) {
	for i := range c.sets {
		s := &c.sets[i]
		for w := range s.valid {
			s.valid[w] = false
		}
		s.pol.reset()
		s.pol.reseed(rng)
		if s.pol2 != nil {
			s.pol2.reset()
			s.pol2.reseed(rng)
		}
	}
}
