// Replacement-policy reference implementations: per-set heap objects
// behind an interface, exactly as the cache package shipped them before
// the flat-array rewrite. Clarity over speed throughout.

package model

import (
	"repro/internal/cache"
	"repro/internal/xrand"
)

// policyState tracks replacement metadata for one set (or one region of
// a partitioned set).
type policyState interface {
	// touch records a hit on the given way.
	touch(way int)
	// insert records a fill into the given way.
	insert(way int)
	// victim selects the way to evict when all ways are valid.
	victim() int
	// reset clears the state (used when a set is flushed).
	reset()
	// reseed swaps the randomness source so a reset cache replays the
	// same victim stream a freshly built cache would draw.
	reseed(rng *xrand.Rand)
}

// newPolicyState builds per-set state for the given kind.
func newPolicyState(kind cache.PolicyKind, ways int, rng *xrand.Rand) policyState {
	switch kind {
	case cache.TrueLRU:
		return newLRUState(ways)
	case cache.TreePLRU:
		if ways&(ways-1) == 0 {
			return newPLRUState(ways)
		}
		// Tree-PLRU requires a power-of-two associativity; fall back to
		// true LRU for odd geometries (e.g. the 11-way LLC slice).
		return newLRUState(ways)
	case cache.SRRIP:
		return newRRIPState(ways, rng)
	case cache.QLRU:
		return newQLRUState(ways)
	case cache.RandomRepl:
		return &randomState{ways: ways, rng: rng}
	default:
		panic("cache: unknown policy kind")
	}
}

// lruState implements true LRU with a recency ordering. order[0] is MRU.
type lruState struct {
	order []uint8 // way indices, most-recent first
}

func newLRUState(ways int) *lruState {
	s := &lruState{order: make([]uint8, ways)}
	s.reset()
	return s
}

func (s *lruState) reset() {
	for i := range s.order {
		s.order[i] = uint8(i)
	}
}

func (s *lruState) moveToFront(way int) {
	w := uint8(way)
	pos := 0
	for i, v := range s.order {
		if v == w {
			pos = i
			break
		}
	}
	copy(s.order[1:pos+1], s.order[:pos])
	s.order[0] = w
}

func (s *lruState) touch(way int)      { s.moveToFront(way) }
func (s *lruState) insert(way int)     { s.moveToFront(way) }
func (s *lruState) victim() int        { return int(s.order[len(s.order)-1]) }
func (s *lruState) reseed(*xrand.Rand) {}

// plruState implements Tree-PLRU for power-of-two associativity. The tree
// is stored as bits in a flat array; bit=0 means "go left for victim".
type plruState struct {
	bits []bool
	ways int
}

func newPLRUState(ways int) *plruState {
	return &plruState{bits: make([]bool, ways-1), ways: ways}
}

func (s *plruState) reset() {
	for i := range s.bits {
		s.bits[i] = false
	}
}

// touch flips tree bits along the path to way so the path points away.
func (s *plruState) touch(way int) {
	node := 0
	lo, hi := 0, s.ways
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if way < mid {
			s.bits[node] = true // point victim search right
			node = 2*node + 1
			hi = mid
		} else {
			s.bits[node] = false // point victim search left
			node = 2*node + 2
			lo = mid
		}
	}
}

func (s *plruState) insert(way int)     { s.touch(way) }
func (s *plruState) reseed(*xrand.Rand) {}

func (s *plruState) victim() int {
	node := 0
	lo, hi := 0, s.ways
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if !s.bits[node] {
			node = 2*node + 1
			hi = mid
		} else {
			node = 2*node + 2
			lo = mid
		}
	}
	return lo
}

// rripState implements SRRIP with 2-bit re-reference prediction values.
// Insertions use RRPV=2, hits promote to 0, victims are ways with RRPV=3
// (aging all ways until one qualifies), ties broken by lowest way index.
type rripState struct {
	rrpv []uint8
	rng  *xrand.Rand
}

func newRRIPState(ways int, rng *xrand.Rand) *rripState {
	s := &rripState{rrpv: make([]uint8, ways), rng: rng}
	s.reset()
	return s
}

const rripMax = 3

func (s *rripState) reset() {
	for i := range s.rrpv {
		s.rrpv[i] = rripMax
	}
}

func (s *rripState) touch(way int)          { s.rrpv[way] = 0 }
func (s *rripState) insert(way int)         { s.rrpv[way] = rripMax - 1 }
func (s *rripState) reseed(rng *xrand.Rand) { s.rng = rng }

func (s *rripState) victim() int {
	for {
		for i, v := range s.rrpv {
			if v == rripMax {
				return i
			}
		}
		for i := range s.rrpv {
			s.rrpv[i]++
		}
	}
}

// qlruState approximates Intel's quad-age LRU: hits set age 0, inserts
// set age 1, eviction picks the *last* way at the maximum age, aging the
// set when no way qualifies.
type qlruState struct {
	age []uint8
}

func newQLRUState(ways int) *qlruState {
	s := &qlruState{age: make([]uint8, ways)}
	s.reset()
	return s
}

func (s *qlruState) reset() {
	for i := range s.age {
		s.age[i] = 3
	}
}

func (s *qlruState) touch(way int)      { s.age[way] = 0 }
func (s *qlruState) insert(way int)     { s.age[way] = 1 }
func (s *qlruState) reseed(*xrand.Rand) {}

func (s *qlruState) victim() int {
	for {
		for i := len(s.age) - 1; i >= 0; i-- {
			if s.age[i] == 3 {
				return i
			}
		}
		for i := range s.age {
			s.age[i]++
		}
	}
}

// randomState evicts a uniformly random way.
type randomState struct {
	ways int
	rng  *xrand.Rand
}

func (s *randomState) reset()                 {}
func (s *randomState) touch(int)              {}
func (s *randomState) insert(int)             {}
func (s *randomState) victim() int            { return s.rng.Intn(s.ways) }
func (s *randomState) reseed(rng *xrand.Rand) { s.rng = rng }
