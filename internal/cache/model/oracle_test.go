package model

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/xrand"
)

// pair is one optimized cache plus its reference model, built from the
// same config and identically seeded rngs so randomized victim draws
// stay in lockstep.
type pair struct {
	fast *cache.Cache
	ref  *Cache
}

func newPair(cfg cache.Config, seed uint64) pair {
	return pair{
		fast: cache.New(cfg, xrand.New(seed)),
		ref:  New(cfg, xrand.New(seed)),
	}
}

// step applies one scripted operation to both implementations and fails
// the test on any observable divergence. The opcode space deliberately
// covers every public mutation plus the read-only probes, so a fuzzed
// script exercises arbitrary interleavings.
func (p pair) step(t *testing.T, cfg cache.Config, op, a, b byte) {
	t.Helper()
	set := int(a) % cfg.Sets
	tag := cache.Tag(b%31) + 1 // small tag space forces collisions
	region := -1
	if cfg.PartitionAt > 0 {
		region = int(op>>4) & 1
	}
	switch op % 7 {
	case 0, 1: // weighted toward the hot ops
		fp, fh := p.fast.Lookup(set, tag)
		rp, rh := p.ref.Lookup(set, tag)
		if fp != rp || fh != rh {
			t.Fatalf("Lookup(%d, %d) = (%d,%v) fast vs (%d,%v) model", set, tag, fp, fh, rp, rh)
		}
	case 2, 3:
		fe := p.fast.InsertRegion(region, set, tag, b)
		re := p.ref.InsertRegion(region, set, tag, b)
		if fe != re {
			t.Fatalf("InsertRegion(%d, %d, %d) evicted %+v fast vs %+v model", region, set, tag, fe, re)
		}
	case 4:
		fp, fr := p.fast.Remove(set, tag)
		rp, rr := p.ref.Remove(set, tag)
		if fp != rp || fr != rr {
			t.Fatalf("Remove(%d, %d) = (%d,%v) fast vs (%d,%v) model", set, tag, fp, fr, rp, rr)
		}
	case 5:
		fu := p.fast.UpdatePayload(set, tag, b)
		ru := p.ref.UpdatePayload(set, tag, b)
		if fu != ru {
			t.Fatalf("UpdatePayload(%d, %d) = %v fast vs %v model", set, tag, fu, ru)
		}
	case 6:
		p.fast.FlushSet(set)
		p.ref.FlushSet(set)
	}
	// After every op the observable state must agree.
	if fc, rc := p.fast.Contains(set, tag), p.ref.Contains(set, tag); fc != rc {
		t.Fatalf("Contains(%d, %d) = %v fast vs %v model", set, tag, fc, rc)
	}
	if fo, ro := p.fast.OccupiedWays(set), p.ref.OccupiedWays(set); fo != ro {
		t.Fatalf("OccupiedWays(%d) = %d fast vs %d model", set, fo, ro)
	}
	ft, rt := p.fast.TagsIn(set), p.ref.TagsIn(set)
	if len(ft) != len(rt) {
		t.Fatalf("TagsIn(%d) length %d fast vs %d model", set, len(ft), len(rt))
	}
	for i := range ft {
		if ft[i] != rt[i] {
			t.Fatalf("TagsIn(%d)[%d] = %d fast vs %d model", set, i, ft[i], rt[i])
		}
	}
}

// cfgFromBytes derives a small but policy- and partition-diverse
// geometry from three fuzz bytes.
func cfgFromBytes(b0, b1, b2 byte) cache.Config {
	ways := 1 + int(b1)%12
	return cache.Config{
		Name:        "oracle",
		Sets:        1 + int(b0>>4)%4,
		Ways:        ways,
		Policy:      cache.Policies()[int(b0)%5],
		PartitionAt: int(b2) % ways, // 0 = unpartitioned
	}
}

// FuzzCacheMatchesModel drives the optimized cache and the reference
// model through the same fuzzer-chosen operation script and requires
// op-for-op agreement on every result and every observable probe. The
// committed corpus under testdata/fuzz runs on every plain `go test`.
func FuzzCacheMatchesModel(f *testing.F) {
	// Seeds: each policy, partitioned and not, with a mixed op script.
	script := []byte{0, 1, 2, 2, 3, 0, 4, 1, 2, 0, 5, 2, 6, 0, 2, 1, 2, 3, 0, 0}
	for pol := byte(0); pol < 5; pol++ {
		f.Add(append([]byte{pol, 7, 0}, script...))
		f.Add(append([]byte{pol, 10, 4}, script...))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		cfg := cfgFromBytes(data[0], data[1], data[2])
		p := newPair(cfg, 42)
		ops := data[3:]
		for i := 0; i+2 < len(ops); i += 3 {
			p.step(t, cfg, ops[i], ops[i+1], ops[i+2])
		}
	})
}

// TestHotPathMatchesModel is the deterministic CI face of the oracle:
// long pseudo-random scripts over every policy, with and without a way
// partition, checked op-by-op. It covers the same property as the fuzz
// target without needing -fuzz, so a plain `go test ./...` licenses the
// hot path.
func TestHotPathMatchesModel(t *testing.T) {
	for _, pol := range cache.Policies() {
		for _, partition := range []int{0, 3} {
			cfg := cache.Config{
				Name:        "oracle",
				Sets:        4,
				Ways:        11, // odd associativity exercises the PLRU->LRU fallback
				Policy:      pol,
				PartitionAt: partition,
			}
			p := newPair(cfg, uint64(17+partition))
			ops := xrand.New(uint64(1000 + int(pol)))
			for i := 0; i < 4000; i++ {
				p.step(t, cfg, byte(ops.Uint64()), byte(ops.Uint64()), byte(ops.Uint64()))
			}
		}
		// Power-of-two geometry so TreePLRU runs its real tree.
		cfg := cache.Config{Name: "oracle", Sets: 2, Ways: 8, Policy: pol}
		p := newPair(cfg, 23)
		ops := xrand.New(uint64(2000 + int(pol)))
		for i := 0; i < 4000; i++ {
			p.step(t, cfg, byte(ops.Uint64()), byte(ops.Uint64()), byte(ops.Uint64()))
		}
	}
}

// TestResetMatchesFreshBothImpls is the reset-vs-fresh metamorphic
// invariant, run against both implementations simultaneously: an
// arbitrarily dirtied then Reset() cache must be indistinguishable from
// a freshly constructed one on any subsequent script — including the
// randomized-policy victim stream.
func TestResetMatchesFreshBothImpls(t *testing.T) {
	for _, pol := range cache.Policies() {
		for _, partition := range []int{0, 2} {
			cfg := cache.Config{Name: "oracle", Sets: 3, Ways: 8, Policy: pol, PartitionAt: partition}
			dirty := newPair(cfg, 99)
			scramble := xrand.New(0xd1e7)
			for i := 0; i < 500; i++ {
				dirty.step(t, cfg, byte(scramble.Uint64()), byte(scramble.Uint64()), byte(scramble.Uint64()))
			}
			dirty.fast.Reset(xrand.New(7))
			dirty.ref.Reset(xrand.New(7))
			fresh := newPair(cfg, 7)
			ops := xrand.New(0xab)
			for i := 0; i < 1000; i++ {
				a, b, c := byte(ops.Uint64()), byte(ops.Uint64()), byte(ops.Uint64())
				dirty.step(t, cfg, a, b, c)
				fresh.step(t, cfg, a, b, c)
				// Cross-check the reset pair against the fresh pair.
				set := int(b) % cfg.Sets
				if do, fo := dirty.fast.OccupiedWays(set), fresh.fast.OccupiedWays(set); do != fo {
					t.Fatalf("%v/split%d: reset cache diverged from fresh at op %d: occupancy %d vs %d",
						pol, partition, i, do, fo)
				}
				dt, ft := dirty.fast.TagsIn(set), fresh.fast.TagsIn(set)
				if len(dt) != len(ft) {
					t.Fatalf("%v/split%d: reset cache holds %d tags vs fresh %d", pol, partition, len(dt), len(ft))
				}
				for j := range dt {
					if dt[j] != ft[j] {
						t.Fatalf("%v/split%d: reset tag %d vs fresh %d", pol, partition, dt[j], ft[j])
					}
				}
			}
		}
	}
}

// TestPartitionIsolationBothImpls is the domain-isolation metamorphic
// invariant: on a way-partitioned cache, no volume of region-0
// allocations may ever evict a region-1 resident (and vice versa), in
// either implementation. This is the property the partition defense
// sells; the oracle pins it on the optimized path.
func TestPartitionIsolationBothImpls(t *testing.T) {
	for _, pol := range cache.Policies() {
		cfg := cache.Config{Name: "oracle", Sets: 2, Ways: 10, Policy: pol, PartitionAt: 4}
		p := newPair(cfg, 5)
		// Residents in region 1.
		protected := []cache.Tag{1000, 1001, 1002}
		for _, tag := range protected {
			p.fast.InsertRegion(1, 0, tag, 0)
			p.ref.InsertRegion(1, 0, tag, 0)
		}
		// Storm region 0 far past its capacity.
		for i := cache.Tag(1); i <= 200; i++ {
			fe := p.fast.InsertRegion(0, 0, i, 0)
			re := p.ref.InsertRegion(0, 0, i, 0)
			if fe != re {
				t.Fatalf("%v: storm insert %d evicted %+v fast vs %+v model", pol, i, fe, re)
			}
			for _, tag := range protected {
				if fe.Valid && fe.Tag == tag {
					t.Fatalf("%v: region-0 storm evicted region-1 resident %d", pol, tag)
				}
			}
		}
		for _, tag := range protected {
			if !p.fast.Contains(0, tag) || !p.ref.Contains(0, tag) {
				t.Fatalf("%v: region-1 resident %d lost isolation", pol, tag)
			}
		}
	}
}
