// Package cache implements generic set-associative cache arrays and the
// replacement policies used by the simulated Skylake-SP / Ice Lake-SP
// cache hierarchy.
//
// The attack algorithms in this repository never look inside these
// structures — they observe only latencies — but the experiments' outcomes
// (eviction-set success rates, Prime+Probe detection rates) emerge from
// the way state modelled here.
//
// The implementation is layout- and dispatch-optimized: all per-set state
// lives in flat arrays indexed by set*ways+way, and the replacement
// policy is resolved to a small enum at construction so the per-access
// path is a switch instead of an interface call. The reference
// implementation it must match op-for-op lives in internal/cache/model.
package cache

import (
	"fmt"
	"strings"

	"repro/internal/xrand"
)

// PolicyKind selects a replacement policy implementation.
type PolicyKind int

// Supported replacement policies. Intel's L1/L2 use Tree-PLRU-like
// schemes; Skylake-SP's LLC uses an adaptive quad-age LRU (QLRU); SRRIP is
// the published academic model closest to observed behaviour. TrueLRU and
// RandomRepl are included for ablations: the paper argues Parallel Probing
// works irrespective of the (possibly unknown) policy (§6.1).
const (
	TrueLRU PolicyKind = iota
	TreePLRU
	SRRIP
	QLRU
	RandomRepl
)

// Policies returns every supported policy kind, in declaration order.
// Sweeps over "all replacement policies" iterate this slice so a newly
// added policy is picked up automatically.
func Policies() []PolicyKind {
	return []PolicyKind{TrueLRU, TreePLRU, SRRIP, QLRU, RandomRepl}
}

// ParsePolicy resolves a policy's conventional name (as printed by
// String, case-insensitively; "PLRU" and "Random" are accepted as
// aliases) back to its kind. It is the inverse of String, used by
// configuration sweeps that name policies declaratively.
func ParsePolicy(name string) (PolicyKind, error) {
	switch strings.ToLower(name) {
	case "lru", "truelru":
		return TrueLRU, nil
	case "tree-plru", "plru", "treeplru":
		return TreePLRU, nil
	case "srrip":
		return SRRIP, nil
	case "qlru":
		return QLRU, nil
	case "random", "randomrepl":
		return RandomRepl, nil
	default:
		return 0, fmt.Errorf("cache: unknown replacement policy %q (want LRU, Tree-PLRU, SRRIP, QLRU or Random)", name)
	}
}

// String returns the policy's conventional name.
func (k PolicyKind) String() string {
	switch k {
	case TrueLRU:
		return "LRU"
	case TreePLRU:
		return "Tree-PLRU"
	case SRRIP:
		return "SRRIP"
	case QLRU:
		return "QLRU"
	case RandomRepl:
		return "Random"
	default:
		return "unknown"
	}
}

// rpolicy is a PolicyKind resolved against a concrete region width: the
// only non-trivial resolution is TreePLRU degrading to true LRU for
// non-power-of-two regions. Resolving once at construction lets every
// per-access call dispatch on a dense enum instead of an interface.
type rpolicy uint8

const (
	rLRU rpolicy = iota
	rPLRU
	rSRRIP
	rQLRU
	rRandom
)

const rripMax = 3

// resolvePolicy maps a configured kind onto the dispatch enum for a
// region of the given width.
func resolvePolicy(kind PolicyKind, ways int) rpolicy {
	switch kind {
	case TrueLRU:
		return rLRU
	case TreePLRU:
		if ways&(ways-1) == 0 {
			return rPLRU
		}
		// Tree-PLRU requires a power-of-two associativity; fall back to
		// true LRU for odd geometries (e.g. the 11-way LLC slice).
		return rLRU
	case SRRIP:
		return rSRRIP
	case QLRU:
		return rQLRU
	case RandomRepl:
		return rRandom
	default:
		panic("cache: unknown policy kind")
	}
}

// metaStride returns the bytes of replacement metadata one set needs for
// the resolved policy over a region of the given width: a recency order
// for LRU, tree bits for PLRU, one age/RRPV byte per way for QLRU/SRRIP,
// nothing for random replacement.
func metaStride(kind rpolicy, ways int) int {
	switch kind {
	case rLRU, rSRRIP, rQLRU:
		return ways
	case rPLRU:
		return ways - 1
	case rRandom:
		return 0
	default:
		panic("cache: unknown policy kind")
	}
}

// regionPolicy is the replacement state for one region (or the whole
// set when unpartitioned) across every set of a cache: meta holds each
// set's metadata at set*stride, and all operations switch on the
// resolved kind.
type regionPolicy struct {
	kind   rpolicy
	ways   int     // region width in ways
	stride int     // metadata bytes per set
	meta   []uint8 // nsets * stride
}

func newRegionPolicy(kind PolicyKind, ways, nsets int) regionPolicy {
	r := resolvePolicy(kind, ways)
	p := regionPolicy{kind: r, ways: ways, stride: metaStride(r, ways)}
	p.meta = make([]uint8, nsets*p.stride)
	for set := 0; set < nsets; set++ {
		p.resetSet(set)
	}
	return p
}

// resetSet restores one set's metadata to its post-construction state.
func (p *regionPolicy) resetSet(set int) {
	m := p.meta[set*p.stride : set*p.stride+p.stride]
	switch p.kind {
	case rLRU:
		for i := range m {
			m[i] = uint8(i)
		}
	case rPLRU:
		for i := range m {
			m[i] = 0
		}
	case rSRRIP, rQLRU:
		for i := range m {
			m[i] = rripMax
		}
	case rRandom:
	}
}

// resetAll restores every set's metadata in one pass, using bulk fills
// for the policies whose reset value is uniform.
func (p *regionPolicy) resetAll() {
	switch p.kind {
	case rPLRU:
		for i := range p.meta {
			p.meta[i] = 0
		}
	case rSRRIP, rQLRU:
		for i := range p.meta {
			p.meta[i] = rripMax
		}
	case rLRU:
		for set := 0; set*p.stride < len(p.meta); set++ {
			p.resetSet(set)
		}
	case rRandom:
	}
}

// moveToFront promotes way w to MRU in an LRU recency order.
func moveToFront(order []uint8, way uint8) {
	pos := 0
	for i, v := range order {
		if v == way {
			pos = i
			break
		}
	}
	copy(order[1:pos+1], order[:pos])
	order[0] = way
}

// plruTouch flips tree bits along the path to way so the victim search
// points away from it. The tree is bits in a flat array; bit=0 means "go
// left for victim".
func plruTouch(bits []uint8, ways, way int) {
	node := 0
	lo, hi := 0, ways
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if way < mid {
			bits[node] = 1 // point victim search right
			node = 2*node + 1
			hi = mid
		} else {
			bits[node] = 0 // point victim search left
			node = 2*node + 2
			lo = mid
		}
	}
}

// touch records a hit on way w (region-relative) of the given set.
func (p *regionPolicy) touch(set, w int) {
	m := p.meta[set*p.stride:]
	switch p.kind {
	case rLRU:
		moveToFront(m[:p.ways], uint8(w))
	case rPLRU:
		plruTouch(m, p.ways, w)
	case rSRRIP, rQLRU:
		m[w] = 0
	case rRandom:
	}
}

// insert records a fill into way w (region-relative) of the given set.
// SRRIP inserts at a long re-reference prediction (RRPV 2); QLRU at age 1.
func (p *regionPolicy) insert(set, w int) {
	m := p.meta[set*p.stride:]
	switch p.kind {
	case rLRU:
		moveToFront(m[:p.ways], uint8(w))
	case rPLRU:
		plruTouch(m, p.ways, w)
	case rSRRIP:
		m[w] = rripMax - 1
	case rQLRU:
		m[w] = 1
	case rRandom:
	}
}

// victim selects the region-relative way to evict from the given set.
// SRRIP prefers the lowest way at the maximum RRPV, QLRU the highest way
// at the maximum age; both age the whole region until a way qualifies.
// Random replacement draws from rng in call order, which is why victim
// order is part of the determinism contract.
func (p *regionPolicy) victim(set int, rng *xrand.Rand) int {
	m := p.meta[set*p.stride:]
	switch p.kind {
	case rLRU:
		return int(m[p.ways-1])
	case rPLRU:
		node := 0
		lo, hi := 0, p.ways
		for hi-lo > 1 {
			mid := (lo + hi) / 2
			if m[node] == 0 {
				node = 2*node + 1
				hi = mid
			} else {
				node = 2*node + 2
				lo = mid
			}
		}
		return lo
	case rSRRIP:
		for {
			for i := 0; i < p.ways; i++ {
				if m[i] == rripMax {
					return i
				}
			}
			for i := 0; i < p.ways; i++ {
				m[i]++
			}
		}
	case rQLRU:
		for {
			for i := p.ways - 1; i >= 0; i-- {
				if m[i] == rripMax {
					return i
				}
			}
			for i := 0; i < p.ways; i++ {
				m[i]++
			}
		}
	case rRandom:
		return rng.Intn(p.ways)
	default:
		panic("cache: unknown policy kind")
	}
}

// policyInstance is a single-set view over a regionPolicy, used by
// policy-level tests to drive one instance through scripted sequences
// the way the old interface-based states were driven.
type policyInstance struct {
	r   regionPolicy
	rng *xrand.Rand
}

// newPolicyState builds one set's worth of policy state. rng is used only
// by randomized policies.
func newPolicyState(kind PolicyKind, ways int, rng *xrand.Rand) *policyInstance {
	return &policyInstance{r: newRegionPolicy(kind, ways, 1), rng: rng}
}

func (s *policyInstance) touch(way int)          { s.r.touch(0, way) }
func (s *policyInstance) insert(way int)         { s.r.insert(0, way) }
func (s *policyInstance) victim() int            { return s.r.victim(0, s.rng) }
func (s *policyInstance) reset()                 { s.r.resetSet(0) }
func (s *policyInstance) reseed(rng *xrand.Rand) { s.rng = rng }
