// Package cache implements generic set-associative cache arrays and the
// replacement policies used by the simulated Skylake-SP / Ice Lake-SP
// cache hierarchy.
//
// The attack algorithms in this repository never look inside these
// structures — they observe only latencies — but the experiments' outcomes
// (eviction-set success rates, Prime+Probe detection rates) emerge from
// the way state modelled here.
package cache

import (
	"fmt"
	"strings"

	"repro/internal/xrand"
)

// PolicyKind selects a replacement policy implementation.
type PolicyKind int

// Supported replacement policies. Intel's L1/L2 use Tree-PLRU-like
// schemes; Skylake-SP's LLC uses an adaptive quad-age LRU (QLRU); SRRIP is
// the published academic model closest to observed behaviour. TrueLRU and
// RandomRepl are included for ablations: the paper argues Parallel Probing
// works irrespective of the (possibly unknown) policy (§6.1).
const (
	TrueLRU PolicyKind = iota
	TreePLRU
	SRRIP
	QLRU
	RandomRepl
)

// Policies returns every supported policy kind, in declaration order.
// Sweeps over "all replacement policies" iterate this slice so a newly
// added policy is picked up automatically.
func Policies() []PolicyKind {
	return []PolicyKind{TrueLRU, TreePLRU, SRRIP, QLRU, RandomRepl}
}

// ParsePolicy resolves a policy's conventional name (as printed by
// String, case-insensitively; "PLRU" and "Random" are accepted as
// aliases) back to its kind. It is the inverse of String, used by
// configuration sweeps that name policies declaratively.
func ParsePolicy(name string) (PolicyKind, error) {
	switch strings.ToLower(name) {
	case "lru", "truelru":
		return TrueLRU, nil
	case "tree-plru", "plru", "treeplru":
		return TreePLRU, nil
	case "srrip":
		return SRRIP, nil
	case "qlru":
		return QLRU, nil
	case "random", "randomrepl":
		return RandomRepl, nil
	default:
		return 0, fmt.Errorf("cache: unknown replacement policy %q (want LRU, Tree-PLRU, SRRIP, QLRU or Random)", name)
	}
}

// String returns the policy's conventional name.
func (k PolicyKind) String() string {
	switch k {
	case TrueLRU:
		return "LRU"
	case TreePLRU:
		return "Tree-PLRU"
	case SRRIP:
		return "SRRIP"
	case QLRU:
		return "QLRU"
	case RandomRepl:
		return "Random"
	default:
		return "unknown"
	}
}

// policyState tracks replacement metadata for one set. Implementations
// assume ways is fixed after construction.
type policyState interface {
	// touch records a hit on the given way.
	touch(way int)
	// insert records a fill into the given way.
	insert(way int)
	// victim selects the way to evict when all ways are valid.
	victim() int
	// reset clears the state (used when a set is flushed).
	reset()
	// reseed swaps the randomness source so a reset cache replays the
	// same victim stream a freshly built cache would draw. Deterministic
	// policies ignore it.
	reseed(rng *xrand.Rand)
}

// newPolicyState builds per-set state for the given kind. rng is used only
// by randomized policies and may be shared across sets of one cache.
func newPolicyState(kind PolicyKind, ways int, rng *xrand.Rand) policyState {
	switch kind {
	case TrueLRU:
		return newLRUState(ways)
	case TreePLRU:
		if ways&(ways-1) == 0 {
			return newPLRUState(ways)
		}
		// Tree-PLRU requires a power-of-two associativity; fall back to
		// true LRU for odd geometries (e.g. the 11-way LLC slice).
		return newLRUState(ways)
	case SRRIP:
		return newRRIPState(ways, rng)
	case QLRU:
		return newQLRUState(ways)
	case RandomRepl:
		return &randomState{ways: ways, rng: rng}
	default:
		panic("cache: unknown policy kind")
	}
}

// lruState implements true LRU with a recency ordering. order[0] is MRU.
type lruState struct {
	order []uint8 // way indices, most-recent first
}

func newLRUState(ways int) *lruState {
	s := &lruState{order: make([]uint8, ways)}
	s.reset()
	return s
}

func (s *lruState) reset() {
	for i := range s.order {
		s.order[i] = uint8(i)
	}
}

func (s *lruState) moveToFront(way int) {
	w := uint8(way)
	pos := 0
	for i, v := range s.order {
		if v == w {
			pos = i
			break
		}
	}
	copy(s.order[1:pos+1], s.order[:pos])
	s.order[0] = w
}

func (s *lruState) touch(way int)      { s.moveToFront(way) }
func (s *lruState) insert(way int)     { s.moveToFront(way) }
func (s *lruState) victim() int        { return int(s.order[len(s.order)-1]) }
func (s *lruState) reseed(*xrand.Rand) {}

// plruState implements Tree-PLRU for power-of-two associativity. The tree
// is stored as bits in a flat array; bit=0 means "go left for victim".
type plruState struct {
	bits []bool
	ways int
}

func newPLRUState(ways int) *plruState {
	return &plruState{bits: make([]bool, ways-1), ways: ways}
}

func (s *plruState) reset() {
	for i := range s.bits {
		s.bits[i] = false
	}
}

// touch flips tree bits along the path to way so the path points away.
func (s *plruState) touch(way int) {
	node := 0
	lo, hi := 0, s.ways
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if way < mid {
			s.bits[node] = true // point victim search right
			node = 2*node + 1
			hi = mid
		} else {
			s.bits[node] = false // point victim search left
			node = 2*node + 2
			lo = mid
		}
	}
}

func (s *plruState) insert(way int)     { s.touch(way) }
func (s *plruState) reseed(*xrand.Rand) {}

func (s *plruState) victim() int {
	node := 0
	lo, hi := 0, s.ways
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if !s.bits[node] {
			node = 2*node + 1
			hi = mid
		} else {
			node = 2*node + 2
			lo = mid
		}
	}
	return lo
}

// rripState implements SRRIP with 2-bit re-reference prediction values.
// Insertions use RRPV=2 ("long re-reference"), hits promote to 0, victims
// are ways with RRPV=3 (aging all ways until one qualifies). Ties are
// broken by the lowest way index, matching the common hardware choice.
type rripState struct {
	rrpv []uint8
	rng  *xrand.Rand
}

func newRRIPState(ways int, rng *xrand.Rand) *rripState {
	s := &rripState{rrpv: make([]uint8, ways), rng: rng}
	s.reset()
	return s
}

const rripMax = 3

func (s *rripState) reset() {
	for i := range s.rrpv {
		s.rrpv[i] = rripMax
	}
}

func (s *rripState) touch(way int)          { s.rrpv[way] = 0 }
func (s *rripState) insert(way int)         { s.rrpv[way] = rripMax - 1 }
func (s *rripState) reseed(rng *xrand.Rand) { s.rng = rng }

func (s *rripState) victim() int {
	for {
		for i, v := range s.rrpv {
			if v == rripMax {
				return i
			}
		}
		for i := range s.rrpv {
			s.rrpv[i]++
		}
	}
}

// qlruState approximates Intel's quad-age LRU: 2-bit ages where hits set
// age 0, inserts set age 1, and eviction picks the oldest (highest age),
// aging the set when no way is at the maximum. It differs from SRRIP in
// its insertion age and in preferring the *last* maximal way, which gives
// it a mild scan resistance similar to observed Skylake behaviour.
type qlruState struct {
	age []uint8
}

func newQLRUState(ways int) *qlruState {
	s := &qlruState{age: make([]uint8, ways)}
	s.reset()
	return s
}

func (s *qlruState) reset() {
	for i := range s.age {
		s.age[i] = 3
	}
}

func (s *qlruState) touch(way int)      { s.age[way] = 0 }
func (s *qlruState) insert(way int)     { s.age[way] = 1 }
func (s *qlruState) reseed(*xrand.Rand) {}

func (s *qlruState) victim() int {
	for {
		for i := len(s.age) - 1; i >= 0; i-- {
			if s.age[i] == 3 {
				return i
			}
		}
		for i := range s.age {
			s.age[i]++
		}
	}
}

// randomState evicts a uniformly random way.
type randomState struct {
	ways int
	rng  *xrand.Rand
}

func (s *randomState) reset()                 {}
func (s *randomState) touch(int)              {}
func (s *randomState) insert(int)             {}
func (s *randomState) victim() int            { return s.rng.Intn(s.ways) }
func (s *randomState) reseed(rng *xrand.Rand) { s.rng = rng }
