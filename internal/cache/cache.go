package cache

import (
	"fmt"

	"repro/internal/xrand"
)

// Tag identifies a cache line by its full physical line address. The zero
// value is never a valid tag because physical frame 0 is reserved by the
// hierarchy, but validity is tracked explicitly anyway.
type Tag uint64

// Set is one associative set: ways tagged lines plus replacement state and
// an optional per-way payload (used by the hierarchy for coherence state).
type Set struct {
	tags    []Tag
	valid   []bool
	payload []uint8
	pol     policyState
}

// Cache is a single-array set-associative cache (one slice of a sliced
// structure, or a whole private cache).
type Cache struct {
	name  string
	sets  []Set
	ways  int
	nsets int
}

// Config describes a cache array's geometry.
type Config struct {
	Name   string
	Sets   int
	Ways   int
	Policy PolicyKind
}

// New builds a cache. rng seeds randomized replacement policies; it must
// not be nil when Policy is RandomRepl or SRRIP.
func New(cfg Config, rng *xrand.Rand) *Cache {
	if cfg.Sets <= 0 || cfg.Ways <= 0 {
		panic(fmt.Sprintf("cache %q: invalid geometry %d sets x %d ways", cfg.Name, cfg.Sets, cfg.Ways))
	}
	c := &Cache{name: cfg.Name, ways: cfg.Ways, nsets: cfg.Sets}
	c.sets = make([]Set, cfg.Sets)
	for i := range c.sets {
		c.sets[i] = Set{
			tags:    make([]Tag, cfg.Ways),
			valid:   make([]bool, cfg.Ways),
			payload: make([]uint8, cfg.Ways),
			pol:     newPolicyState(cfg.Policy, cfg.Ways, rng),
		}
	}
	return c
}

// Name returns the configured name ("L2", "LLC[3]", ...).
func (c *Cache) Name() string { return c.name }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.nsets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// set returns the set at index i, panicking on out-of-range indices.
func (c *Cache) set(i int) *Set {
	if i < 0 || i >= c.nsets {
		panic(fmt.Sprintf("cache %q: set index %d out of range [0,%d)", c.name, i, c.nsets))
	}
	return &c.sets[i]
}

// Lookup probes set idx for tag. On a hit it updates replacement state and
// returns the way's payload.
func (c *Cache) Lookup(idx int, tag Tag) (payload uint8, hit bool) {
	s := c.set(idx)
	for w, v := range s.valid {
		if v && s.tags[w] == tag {
			s.pol.touch(w)
			return s.payload[w], true
		}
	}
	return 0, false
}

// Contains reports whether tag is present without touching replacement
// state. It is for validation/instrumentation only — attack code must not
// call it.
func (c *Cache) Contains(idx int, tag Tag) bool {
	s := c.set(idx)
	for w, v := range s.valid {
		if v && s.tags[w] == tag {
			return true
		}
	}
	return false
}

// Evicted describes a line displaced by an insertion.
type Evicted struct {
	Tag     Tag
	Payload uint8
	Valid   bool
}

// Insert fills tag into set idx with the given payload, evicting a line if
// the set is full. If the tag is already present its payload is updated
// and replacement state touched; no eviction occurs.
func (c *Cache) Insert(idx int, tag Tag, payload uint8) Evicted {
	s := c.set(idx)
	// Already present: update in place.
	for w, v := range s.valid {
		if v && s.tags[w] == tag {
			s.payload[w] = payload
			s.pol.touch(w)
			return Evicted{}
		}
	}
	// Free way available.
	for w, v := range s.valid {
		if !v {
			s.tags[w] = tag
			s.valid[w] = true
			s.payload[w] = payload
			s.pol.insert(w)
			return Evicted{}
		}
	}
	// Evict per policy.
	w := s.pol.victim()
	out := Evicted{Tag: s.tags[w], Payload: s.payload[w], Valid: true}
	s.tags[w] = tag
	s.payload[w] = payload
	s.pol.insert(w)
	return out
}

// UpdatePayload changes the payload of a resident line without touching
// replacement state. It reports whether the line was found.
func (c *Cache) UpdatePayload(idx int, tag Tag, payload uint8) bool {
	s := c.set(idx)
	for w, v := range s.valid {
		if v && s.tags[w] == tag {
			s.payload[w] = payload
			return true
		}
	}
	return false
}

// Remove invalidates tag in set idx, reporting whether it was present.
func (c *Cache) Remove(idx int, tag Tag) (payload uint8, removed bool) {
	s := c.set(idx)
	for w, v := range s.valid {
		if v && s.tags[w] == tag {
			s.valid[w] = false
			return s.payload[w], true
		}
	}
	return 0, false
}

// OccupiedWays returns how many ways of set idx hold valid lines.
func (c *Cache) OccupiedWays(idx int) int {
	s := c.set(idx)
	n := 0
	for _, v := range s.valid {
		if v {
			n++
		}
	}
	return n
}

// TagsIn returns the valid tags in set idx (instrumentation only).
func (c *Cache) TagsIn(idx int) []Tag {
	s := c.set(idx)
	var out []Tag
	for w, v := range s.valid {
		if v {
			out = append(out, s.tags[w])
		}
	}
	return out
}

// FlushSet invalidates every line in set idx and resets replacement state.
func (c *Cache) FlushSet(idx int) {
	s := c.set(idx)
	for w := range s.valid {
		s.valid[w] = false
	}
	s.pol.reset()
}

// FlushAll invalidates the whole cache.
func (c *Cache) FlushAll() {
	for i := range c.sets {
		c.FlushSet(i)
	}
}

// Reset restores the cache to the state New would produce with rng: every
// line invalidated, replacement metadata cleared, and randomized policies
// re-pointed at rng so the victim stream replays identically. It reuses
// the existing arrays, so pooled hosts reset without allocating.
func (c *Cache) Reset(rng *xrand.Rand) {
	for i := range c.sets {
		s := &c.sets[i]
		for w := range s.valid {
			s.valid[w] = false
		}
		s.pol.reset()
		s.pol.reseed(rng)
	}
}
