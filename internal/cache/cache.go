package cache

import (
	"fmt"

	"repro/internal/xrand"
)

// Tag identifies a cache line by its full physical line address. The zero
// value is never a valid tag because physical frame 0 is reserved by the
// hierarchy, but validity is tracked explicitly anyway.
type Tag uint64

// Cache is a single-array set-associative cache (one slice of a sliced
// structure, or a whole private cache). All per-line state is stored in
// flat structure-of-arrays slices indexed set*ways+way — sized once at
// construction, reset by bulk clears, no per-set allocations or pointer
// chasing on the access path. split is the way-partition boundary
// (0 = unpartitioned); a partitioned cache keeps two independent
// regionPolicy instances, one per region, exactly as the reference model
// keeps two policyState objects per set.
type Cache struct {
	name  string
	ways  int
	nsets int
	split int

	tags    []Tag   // set*ways + way
	valid   []bool  // set*ways + way
	payload []uint8 // set*ways + way

	r0  regionPolicy // ways [0, split) — or the whole set when split == 0
	r1  regionPolicy // ways [split, ways); unused when split == 0
	rng *xrand.Rand  // randomized-policy source, shared across sets
}

// Config describes a cache array's geometry.
type Config struct {
	Name   string
	Sets   int
	Ways   int
	Policy PolicyKind
	// PartitionAt way-partitions every set into region 0 (ways
	// [0, PartitionAt)) and region 1 (the rest), each with independent
	// replacement state; allocations are then confined to the region
	// named in InsertRegion. 0 (the default) builds an unpartitioned
	// cache whose behaviour is bit-identical to the pre-partition code.
	PartitionAt int
}

// New builds a cache. rng seeds randomized replacement policies; it must
// not be nil when Policy is RandomRepl or SRRIP.
func New(cfg Config, rng *xrand.Rand) *Cache {
	if cfg.Sets <= 0 || cfg.Ways <= 0 {
		panic(fmt.Sprintf("cache %q: invalid geometry %d sets x %d ways", cfg.Name, cfg.Sets, cfg.Ways))
	}
	if cfg.PartitionAt < 0 || cfg.PartitionAt >= cfg.Ways {
		panic(fmt.Sprintf("cache %q: partition at %d outside (0, %d)", cfg.Name, cfg.PartitionAt, cfg.Ways))
	}
	c := &Cache{name: cfg.Name, ways: cfg.Ways, nsets: cfg.Sets, split: cfg.PartitionAt, rng: rng}
	n := cfg.Sets * cfg.Ways
	c.tags = make([]Tag, n)
	c.valid = make([]bool, n)
	c.payload = make([]uint8, n)
	if c.split > 0 {
		c.r0 = newRegionPolicy(cfg.Policy, c.split, cfg.Sets)
		c.r1 = newRegionPolicy(cfg.Policy, cfg.Ways-c.split, cfg.Sets)
	} else {
		c.r0 = newRegionPolicy(cfg.Policy, cfg.Ways, cfg.Sets)
	}
	return c
}

// Split returns the way-partition boundary (0 = unpartitioned).
func (c *Cache) Split() int { return c.split }

// touch records a hit on way w of set idx against the owning region's
// policy.
func (c *Cache) touch(idx, w int) {
	if c.split > 0 && w >= c.split {
		c.r1.touch(idx, w-c.split)
		return
	}
	c.r0.touch(idx, w)
}

// fill records an insertion into way w of set idx against the owning
// region's policy.
func (c *Cache) fill(idx, w int) {
	if c.split > 0 && w >= c.split {
		c.r1.insert(idx, w-c.split)
		return
	}
	c.r0.insert(idx, w)
}

// regionBounds returns the way range [lo, hi) a region may allocate in.
// Region -1 (or an unpartitioned cache) spans every way; on a
// partitioned cache an unregioned insertion is a programming error —
// it would silently breach the isolation the partition exists for.
func (c *Cache) regionBounds(region int) (lo, hi int) {
	if c.split == 0 {
		return 0, c.ways
	}
	switch region {
	case 0:
		return 0, c.split
	case 1:
		return c.split, c.ways
	default:
		panic(fmt.Sprintf("cache %q: unregioned insert into a partitioned cache", c.name))
	}
}

// regionVictim selects the eviction victim within the region's ways per
// the region's own policy instance.
func (c *Cache) regionVictim(idx, lo int) int {
	if c.split > 0 && lo == c.split {
		return c.split + c.r1.victim(idx, c.rng)
	}
	return lo + c.r0.victim(idx, c.rng)
}

// Name returns the configured name ("L2", "LLC[3]", ...).
func (c *Cache) Name() string { return c.name }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.nsets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// base returns the flat-array offset of set i, panicking on
// out-of-range indices.
func (c *Cache) base(i int) int {
	if i < 0 || i >= c.nsets {
		panic(fmt.Sprintf("cache %q: set index %d out of range [0,%d)", c.name, i, c.nsets))
	}
	return i * c.ways
}

// Lookup probes set idx for tag. On a hit it updates replacement state and
// returns the way's payload.
func (c *Cache) Lookup(idx int, tag Tag) (payload uint8, hit bool) {
	b := c.base(idx)
	tags := c.tags[b : b+c.ways]
	valid := c.valid[b : b+c.ways]
	for w, v := range valid {
		if v && tags[w] == tag {
			c.touch(idx, w)
			return c.payload[b+w], true
		}
	}
	return 0, false
}

// Contains reports whether tag is present without touching replacement
// state. It is for validation/instrumentation only — attack code must not
// call it.
func (c *Cache) Contains(idx int, tag Tag) bool {
	b := c.base(idx)
	tags := c.tags[b : b+c.ways]
	valid := c.valid[b : b+c.ways]
	for w, v := range valid {
		if v && tags[w] == tag {
			return true
		}
	}
	return false
}

// Evicted describes a line displaced by an insertion.
type Evicted struct {
	Tag     Tag
	Payload uint8
	Valid   bool
}

// Insert fills tag into set idx with the given payload, evicting a line if
// the set is full. If the tag is already present its payload is updated
// and replacement state touched; no eviction occurs. On a way-partitioned
// cache Insert panics — use InsertRegion, which names the allocating
// domain's region.
func (c *Cache) Insert(idx int, tag Tag, payload uint8) Evicted {
	return c.InsertRegion(-1, idx, tag, payload)
}

// InsertRegion is Insert with allocation confined to one region of a
// way-partitioned cache: region 0 is ways [0, Split()), region 1 the
// remainder, each evicting per its own policy instance. Hits anywhere in
// the set still update in place — residency is set-wide, only
// allocation is regioned. On an unpartitioned cache the region
// (including -1, "unregioned") is ignored and behaviour is identical to
// the historical Insert.
func (c *Cache) InsertRegion(region, idx int, tag Tag, payload uint8) Evicted {
	b := c.base(idx)
	tags := c.tags[b : b+c.ways]
	valid := c.valid[b : b+c.ways]
	lo, hi := c.regionBounds(region)
	// Already present: update in place.
	for w, v := range valid {
		if v && tags[w] == tag {
			c.payload[b+w] = payload
			c.touch(idx, w)
			return Evicted{}
		}
	}
	// Free way available within the region.
	for w := lo; w < hi; w++ {
		if !valid[w] {
			tags[w] = tag
			valid[w] = true
			c.payload[b+w] = payload
			c.fill(idx, w)
			return Evicted{}
		}
	}
	// Evict per the region's policy.
	w := c.regionVictim(idx, lo)
	out := Evicted{Tag: tags[w], Payload: c.payload[b+w], Valid: true}
	tags[w] = tag
	c.payload[b+w] = payload
	c.fill(idx, w)
	return out
}

// UpdatePayload changes the payload of a resident line without touching
// replacement state. It reports whether the line was found.
func (c *Cache) UpdatePayload(idx int, tag Tag, payload uint8) bool {
	b := c.base(idx)
	for w := 0; w < c.ways; w++ {
		if c.valid[b+w] && c.tags[b+w] == tag {
			c.payload[b+w] = payload
			return true
		}
	}
	return false
}

// Remove invalidates tag in set idx, reporting whether it was present.
func (c *Cache) Remove(idx int, tag Tag) (payload uint8, removed bool) {
	b := c.base(idx)
	for w := 0; w < c.ways; w++ {
		if c.valid[b+w] && c.tags[b+w] == tag {
			c.valid[b+w] = false
			return c.payload[b+w], true
		}
	}
	return 0, false
}

// OccupiedWays returns how many ways of set idx hold valid lines.
func (c *Cache) OccupiedWays(idx int) int {
	b := c.base(idx)
	n := 0
	for _, v := range c.valid[b : b+c.ways] {
		if v {
			n++
		}
	}
	return n
}

// TagsIn returns the valid tags in set idx (instrumentation only).
func (c *Cache) TagsIn(idx int) []Tag {
	b := c.base(idx)
	var out []Tag
	for w := 0; w < c.ways; w++ {
		if c.valid[b+w] {
			out = append(out, c.tags[b+w])
		}
	}
	return out
}

// FlushSet invalidates every line in set idx and resets replacement state.
func (c *Cache) FlushSet(idx int) {
	b := c.base(idx)
	for w := range c.valid[b : b+c.ways] {
		c.valid[b+w] = false
	}
	c.r0.resetSet(idx)
	if c.split > 0 {
		c.r1.resetSet(idx)
	}
}

// FlushAll invalidates the whole cache.
func (c *Cache) FlushAll() {
	for i := range c.valid {
		c.valid[i] = false
	}
	c.r0.resetAll()
	if c.split > 0 {
		c.r1.resetAll()
	}
}

// Reset restores the cache to the state New would produce with rng: every
// line invalidated, replacement metadata cleared in bulk, and randomized
// policies re-pointed at rng so the victim stream replays identically. It
// reuses the existing arrays, so pooled hosts reset without allocating.
func (c *Cache) Reset(rng *xrand.Rand) {
	for i := range c.valid {
		c.valid[i] = false
	}
	c.r0.resetAll()
	if c.split > 0 {
		c.r1.resetAll()
	}
	c.rng = rng
}
