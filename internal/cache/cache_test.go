package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func newCache(t testing.TB, pol PolicyKind, sets, ways int) *Cache {
	t.Helper()
	return New(Config{Name: "test", Sets: sets, Ways: ways, Policy: pol}, xrand.New(1))
}

func TestInsertLookup(t *testing.T) {
	c := newCache(t, TrueLRU, 4, 2)
	c.Insert(0, 100, 7)
	if p, hit := c.Lookup(0, 100); !hit || p != 7 {
		t.Fatalf("lookup = %v,%v", p, hit)
	}
	if _, hit := c.Lookup(1, 100); hit {
		t.Fatal("hit in the wrong set")
	}
	if _, hit := c.Lookup(0, 200); hit {
		t.Fatal("hit for an absent tag")
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := newCache(t, TrueLRU, 1, 4)
	for i := Tag(1); i <= 4; i++ {
		if ev := c.Insert(0, i, 0); ev.Valid {
			t.Fatal("eviction while ways were free")
		}
	}
	// Touch tag 1 so 2 becomes the LRU.
	c.Lookup(0, 1)
	ev := c.Insert(0, 5, 0)
	if !ev.Valid || ev.Tag != 2 {
		t.Fatalf("evicted %v, want 2", ev.Tag)
	}
}

func TestReinsertUpdatesInPlace(t *testing.T) {
	c := newCache(t, TrueLRU, 1, 2)
	c.Insert(0, 1, 10)
	c.Insert(0, 2, 20)
	if ev := c.Insert(0, 1, 11); ev.Valid {
		t.Fatal("reinsertion must not evict")
	}
	if p, _ := c.Lookup(0, 1); p != 11 {
		t.Fatalf("payload = %d, want 11", p)
	}
	if c.OccupiedWays(0) != 2 {
		t.Fatal("duplicate entry created")
	}
}

func TestRemove(t *testing.T) {
	c := newCache(t, TrueLRU, 1, 2)
	c.Insert(0, 1, 9)
	if p, ok := c.Remove(0, 1); !ok || p != 9 {
		t.Fatalf("remove = %v,%v", p, ok)
	}
	if _, ok := c.Remove(0, 1); ok {
		t.Fatal("double remove succeeded")
	}
	if c.OccupiedWays(0) != 0 {
		t.Fatal("set not empty after removal")
	}
}

func TestOccupancyNeverExceedsWays(t *testing.T) {
	for _, pol := range []PolicyKind{TrueLRU, TreePLRU, SRRIP, QLRU, RandomRepl} {
		pol := pol
		f := func(ops []uint16) bool {
			c := newCache(t, pol, 2, 4)
			for _, op := range ops {
				set := int(op) % 2
				tag := Tag(op%97 + 1)
				switch op % 3 {
				case 0:
					c.Insert(set, tag, 0)
				case 1:
					c.Lookup(set, tag)
				case 2:
					c.Remove(set, tag)
				}
				if c.OccupiedWays(0) > 4 || c.OccupiedWays(1) > 4 {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Fatalf("policy %v: %v", pol, err)
		}
	}
}

func TestWConsecutiveInsertionsEvictVictim(t *testing.T) {
	// The eviction-set property that all attack code relies on: with an
	// age-ordered policy, inserting W new lines into a full set displaces
	// any line that is not re-touched.
	c := newCache(t, TrueLRU, 1, 8)
	c.Insert(0, 999, 0)
	for i := Tag(1); i <= 8; i++ {
		c.Insert(0, i, 0)
	}
	if c.Contains(0, 999) {
		t.Fatal("victim survived W insertions under LRU")
	}
}

func TestSRRIPScanResistance(t *testing.T) {
	// SRRIP keeps a re-referenced line through a single scan of W new
	// lines — the behaviour that defeats single-traversal eviction and
	// motivates the replacement-policy ablation.
	c := newCache(t, SRRIP, 1, 8)
	c.Insert(0, 999, 0)
	c.Lookup(0, 999) // promote to RRPV 0
	for i := Tag(1); i <= 8; i++ {
		c.Insert(0, i, 0)
	}
	if !c.Contains(0, 999) {
		t.Fatal("SRRIP evicted a just-promoted line during a scan")
	}
}

func TestFlush(t *testing.T) {
	c := newCache(t, TrueLRU, 2, 2)
	c.Insert(0, 1, 0)
	c.Insert(1, 2, 0)
	c.FlushSet(0)
	if c.Contains(0, 1) || !c.Contains(1, 2) {
		t.Fatal("FlushSet affected the wrong set")
	}
	c.FlushAll()
	if c.Contains(1, 2) {
		t.Fatal("FlushAll left a line")
	}
}

func TestTagsIn(t *testing.T) {
	c := newCache(t, TrueLRU, 1, 3)
	c.Insert(0, 5, 0)
	c.Insert(0, 6, 0)
	tags := c.TagsIn(0)
	if len(tags) != 2 {
		t.Fatalf("tags = %v", tags)
	}
}

func TestUpdatePayload(t *testing.T) {
	c := newCache(t, TrueLRU, 1, 2)
	c.Insert(0, 1, 5)
	if !c.UpdatePayload(0, 1, 9) {
		t.Fatal("update failed")
	}
	if p, _ := c.Lookup(0, 1); p != 9 {
		t.Fatalf("payload = %d", p)
	}
	if c.UpdatePayload(0, 42, 1) {
		t.Fatal("update of absent tag succeeded")
	}
}

func TestPLRUFallbackForOddWays(t *testing.T) {
	// 11 ways is not a power of two: TreePLRU must still work (falls back
	// to LRU) and preserve the W-insertions property.
	c := newCache(t, TreePLRU, 1, 11)
	c.Insert(0, 999, 0)
	for i := Tag(1); i <= 11; i++ {
		c.Insert(0, i, 0)
	}
	if c.Contains(0, 999) {
		t.Fatal("victim survived 11 insertions")
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero ways")
		}
	}()
	New(Config{Name: "bad", Sets: 4, Ways: 0, Policy: TrueLRU}, xrand.New(1))
}

func TestResetMatchesFresh(t *testing.T) {
	// A reset cache must replay the victim stream of a freshly built one,
	// including for randomized policies (the host-pool contract).
	for _, pol := range []PolicyKind{TrueLRU, TreePLRU, SRRIP, QLRU, RandomRepl} {
		fresh := New(Config{Name: "f", Sets: 2, Ways: 4, Policy: pol}, xrand.New(5))
		reused := New(Config{Name: "r", Sets: 2, Ways: 4, Policy: pol}, xrand.New(99))
		// Dirty the reused cache.
		for i := Tag(1); i <= 9; i++ {
			reused.Insert(0, i, 0)
			reused.Insert(1, i+100, 0)
		}
		reused.Reset(xrand.New(5))
		for s := 0; s < 2; s++ {
			if n := reused.OccupiedWays(s); n != 0 {
				t.Fatalf("%v: set %d still holds %d lines after reset", pol, s, n)
			}
		}
		for i := Tag(1); i <= 40; i++ {
			fe := fresh.Insert(0, i, 0)
			re := reused.Insert(0, i, 0)
			if fe != re {
				t.Fatalf("%v: insertion %d evicted %v fresh vs %v reset", pol, i, fe, re)
			}
		}
	}
}
