package cache

import (
	"testing"

	"repro/internal/xrand"
)

// TestParsePolicyRoundTrip checks ParsePolicy inverts String for every
// supported policy, tolerates case, and rejects unknown names.
func TestParsePolicyRoundTrip(t *testing.T) {
	for _, k := range Policies() {
		got, err := ParsePolicy(k.String())
		if err != nil || got != k {
			t.Errorf("ParsePolicy(%q) = %v, %v", k.String(), got, err)
		}
		if got, err := ParsePolicy("  "); err == nil {
			t.Errorf("ParsePolicy accepted blank name as %v", got)
		}
	}
	for name, want := range map[string]PolicyKind{
		"lru": TrueLRU, "PLRU": TreePLRU, "srrip": SRRIP, "qlru": QLRU, "random": RandomRepl,
	} {
		if got, err := ParsePolicy(name); err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParsePolicy("FIFO"); err == nil {
		t.Error("ParsePolicy accepted an unknown policy")
	}
	if len(Policies()) != 5 {
		t.Errorf("Policies() = %v, want all five kinds", Policies())
	}
}

// policyScript drives one policyState through a scripted sequence and
// checks every expected victim. Victim checks use the real (mutating)
// victim() call, so expectations account for aging side effects exactly
// as Insert would observe them.
type policyStep struct {
	op   string // "insert", "touch", "victim"
	way  int    // for insert/touch
	want int    // for victim
}

// TestPolicyVictimSemantics pins the victim/touch/insert behaviour of
// every deterministic policy with per-policy scripts.
func TestPolicyVictimSemantics(t *testing.T) {
	cases := []struct {
		name  string
		kind  PolicyKind
		ways  int
		steps []policyStep
	}{
		{
			// True LRU: victim is always the least-recently-used way; touch
			// and insert both promote to MRU.
			name: "LRU order", kind: TrueLRU, ways: 4,
			steps: []policyStep{
				{op: "insert", way: 0}, {op: "insert", way: 1}, {op: "insert", way: 2}, {op: "insert", way: 3},
				{op: "victim", want: 0},
				{op: "touch", way: 0},
				{op: "victim", want: 1},
				{op: "touch", way: 1}, {op: "touch", way: 2}, {op: "touch", way: 3},
				{op: "victim", want: 0},
			},
		},
		{
			// Tree-PLRU approximates LRU: after filling 0..3 in order the
			// victim is way 0, but a touch of 0 sends the search to the
			// *other half* of the tree (way 2), not to the true LRU way 1.
			name: "Tree-PLRU approximation", kind: TreePLRU, ways: 4,
			steps: []policyStep{
				{op: "insert", way: 0}, {op: "insert", way: 1}, {op: "insert", way: 2}, {op: "insert", way: 3},
				{op: "victim", want: 0},
				{op: "touch", way: 0},
				{op: "victim", want: 2},
			},
		},
		{
			// SRRIP: fills insert at RRPV 2, so the first victim search ages
			// every way to 3 and picks the lowest index. A touched way is
			// promoted to 0 and survives the next search.
			name: "SRRIP aging", kind: SRRIP, ways: 4,
			steps: []policyStep{
				{op: "insert", way: 0}, {op: "insert", way: 1}, {op: "insert", way: 2}, {op: "insert", way: 3},
				{op: "victim", want: 0}, // ages all to 3, lowest index wins
				{op: "touch", way: 1},
				{op: "victim", want: 0}, // way 0 still at max, way 1 protected
			},
		},
		{
			// SRRIP distinguishes insert (RRPV 2) from touch (RRPV 0): an
			// inserted-then-touched way outlives a merely inserted one.
			name: "SRRIP insert vs touch", kind: SRRIP, ways: 2,
			steps: []policyStep{
				{op: "insert", way: 0}, {op: "touch", way: 0}, {op: "insert", way: 1},
				{op: "victim", want: 1},
			},
		},
		{
			// QLRU: inserts at age 1; with no way at the maximum the set ages
			// until one qualifies, and the *last* maximal way is preferred —
			// the mild scan resistance that distinguishes it from SRRIP.
			name: "QLRU last-maximal preference", kind: QLRU, ways: 4,
			steps: []policyStep{
				{op: "insert", way: 0}, {op: "insert", way: 1}, {op: "insert", way: 2}, {op: "insert", way: 3},
				{op: "victim", want: 3},
				{op: "touch", way: 3},
				{op: "victim", want: 2},
			},
		},
		{
			// Non-power-of-two associativity: TreePLRU falls back to true
			// LRU (the 11-way LLC slice case).
			name: "Tree-PLRU odd-ways fallback", kind: TreePLRU, ways: 3,
			steps: []policyStep{
				{op: "insert", way: 0}, {op: "insert", way: 1}, {op: "insert", way: 2},
				{op: "victim", want: 0},
				{op: "touch", way: 0},
				{op: "victim", want: 1},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := newPolicyState(tc.kind, tc.ways, xrand.New(1))
			for i, st := range tc.steps {
				switch st.op {
				case "insert":
					s.insert(st.way)
				case "touch":
					s.touch(st.way)
				case "victim":
					if got := s.victim(); got != st.want {
						t.Fatalf("step %d: victim = %d, want %d", i, got, st.want)
					}
				}
			}
		})
	}
}

// TestPolicyVictimInRange drives every policy, over several geometries,
// through a pseudo-random op mix and checks the structural invariant:
// victim() always returns a way in [0, ways).
func TestPolicyVictimInRange(t *testing.T) {
	for _, kind := range Policies() {
		for _, ways := range []int{2, 4, 7, 8, 11, 16} {
			rng := xrand.New(uint64(ways) * 31)
			s := newPolicyState(kind, ways, rng)
			ops := xrand.New(0xabc)
			for i := 0; i < 500; i++ {
				switch ops.Intn(3) {
				case 0:
					s.insert(ops.Intn(ways))
				case 1:
					s.touch(ops.Intn(ways))
				case 2:
					if v := s.victim(); v < 0 || v >= ways {
						t.Fatalf("%v/%d-way: victim %d out of range at op %d", kind, ways, v, i)
					}
				}
			}
		}
	}
}

// TestPolicyResetReplay is the reseed-replay contract at the policy
// level: after an arbitrary op history, reset + reseed with an
// identically seeded rng must replay exactly the victim stream of a
// fresh state — for randomized policies included. This is what lets
// pooled hosts reuse cache arrays without perturbing determinism.
func TestPolicyResetReplay(t *testing.T) {
	const ways, seed = 8, uint64(37)
	drive := func(s *policyInstance) []int {
		ops := xrand.New(0x5eed)
		var victims []int
		for i := 0; i < 300; i++ {
			switch ops.Intn(3) {
			case 0:
				s.insert(ops.Intn(ways))
			case 1:
				s.touch(ops.Intn(ways))
			case 2:
				victims = append(victims, s.victim())
			}
		}
		return victims
	}
	for _, kind := range Policies() {
		fresh := newPolicyState(kind, ways, xrand.New(seed))
		want := drive(fresh)

		dirty := newPolicyState(kind, ways, xrand.New(99))
		scramble := xrand.New(0xd1e7)
		for i := 0; i < 100; i++ {
			dirty.insert(scramble.Intn(ways))
			dirty.victim()
		}
		dirty.reset()
		dirty.reseed(xrand.New(seed))
		got := drive(dirty)
		if len(got) != len(want) {
			t.Fatalf("%v: replay length %d vs %d", kind, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v: victim stream diverged at %d: %d vs %d", kind, i, got[i], want[i])
			}
		}
	}
}
