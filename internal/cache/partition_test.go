package cache

import (
	"testing"

	"repro/internal/xrand"
)

func newPartitioned(t *testing.T, policy PolicyKind) *Cache {
	t.Helper()
	return New(Config{Name: "part", Sets: 4, Ways: 8, Policy: policy, PartitionAt: 3}, xrand.New(1))
}

// TestPartitionIsolation is the security property the partition model
// relies on: allocations in one region never displace the other
// region's lines, under every replacement policy.
func TestPartitionIsolation(t *testing.T) {
	for _, pol := range Policies() {
		c := newPartitioned(t, pol)
		// Fill region 0 (3 ways) with tags 1..3.
		for tag := Tag(1); tag <= 3; tag++ {
			if ev := c.InsertRegion(0, 0, tag<<6, 0); ev.Valid {
				t.Fatalf("%v: filling region 0 evicted %v", pol, ev)
			}
		}
		// Hammer region 1 with far more tags than its 5 ways.
		for tag := Tag(100); tag < 140; tag++ {
			ev := c.InsertRegion(1, 0, tag<<6, 0)
			if ev.Valid && ev.Tag < 100<<6 {
				t.Fatalf("%v: region-1 insertion evicted region-0 tag %v", pol, ev.Tag)
			}
		}
		for tag := Tag(1); tag <= 3; tag++ {
			if !c.Contains(0, tag<<6) {
				t.Fatalf("%v: region-0 tag %d displaced by region-1 traffic", pol, tag)
			}
		}
		// And the mirror image: region 0 cannot displace region 1.
		c2 := newPartitioned(t, pol)
		for tag := Tag(200); tag < 205; tag++ {
			c2.InsertRegion(1, 0, tag<<6, 0)
		}
		for tag := Tag(1); tag < 40; tag++ {
			ev := c2.InsertRegion(0, 0, tag<<6, 0)
			if ev.Valid && ev.Tag >= 200<<6 {
				t.Fatalf("%v: region-0 insertion evicted region-1 tag %v", pol, ev.Tag)
			}
		}
	}
}

// TestPartitionRegionCapacity: each region evicts exactly when its own
// ways are exhausted, not at the set's nominal associativity.
func TestPartitionRegionCapacity(t *testing.T) {
	c := newPartitioned(t, TrueLRU)
	// Region 0 holds 3 ways: the 4th insertion evicts the LRU (tag 1).
	for tag := Tag(1); tag <= 3; tag++ {
		c.InsertRegion(0, 1, tag<<6, 0)
	}
	ev := c.InsertRegion(0, 1, 4<<6, 0)
	if !ev.Valid || ev.Tag != 1<<6 {
		t.Fatalf("4th region-0 insertion: evicted %+v, want tag 1", ev)
	}
	if c.OccupiedWays(1) != 3 {
		t.Fatalf("occupied = %d, want 3", c.OccupiedWays(1))
	}
}

func TestPartitionedInsertWithoutRegionPanics(t *testing.T) {
	c := newPartitioned(t, TrueLRU)
	defer func() {
		if recover() == nil {
			t.Fatal("unregioned Insert into a partitioned cache must panic")
		}
	}()
	c.Insert(0, 1<<6, 0)
}

func TestUnpartitionedIgnoresRegion(t *testing.T) {
	c := New(Config{Name: "flat", Sets: 2, Ways: 4, Policy: TrueLRU}, xrand.New(1))
	if c.Split() != 0 {
		t.Fatal("unpartitioned cache reports a split")
	}
	// Region arguments (any value) are ignored: all 4 ways usable.
	for tag := Tag(1); tag <= 4; tag++ {
		if ev := c.InsertRegion(0, 0, tag<<6, 0); ev.Valid {
			t.Fatalf("eviction before the set filled: %+v", ev)
		}
	}
	if ev := c.InsertRegion(1, 0, 9<<6, 0); !ev.Valid {
		t.Fatal("5th insertion must evict")
	}
}

// TestPartitionReset: FlushSet and Reset restore both regions' policy
// state, so a reset partitioned cache replays a fresh one.
func TestPartitionReset(t *testing.T) {
	run := func(c *Cache) []Tag {
		var evs []Tag
		for tag := Tag(1); tag < 30; tag++ {
			reg := int(tag) % 2
			if ev := c.InsertRegion(reg, 0, tag<<6, uint8(reg)); ev.Valid {
				evs = append(evs, ev.Tag)
			}
		}
		return evs
	}
	c := newPartitioned(t, SRRIP)
	a := run(c)
	c.Reset(xrand.New(42))
	b := run(c)
	c2 := New(Config{Name: "part", Sets: 4, Ways: 8, Policy: SRRIP, PartitionAt: 3}, xrand.New(42))
	d := run(c2)
	if len(b) != len(d) {
		t.Fatalf("reset replay differs from fresh: %d vs %d evictions", len(b), len(d))
	}
	for i := range b {
		if b[i] != d[i] {
			t.Fatalf("reset replay diverges at eviction %d: %v vs %v", i, b[i], d[i])
		}
	}
	_ = a
}

func TestBadPartitionPanics(t *testing.T) {
	for _, at := range []int{-1, 8, 9} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("PartitionAt=%d must panic", at)
				}
			}()
			New(Config{Name: "bad", Sets: 2, Ways: 8, PartitionAt: at}, xrand.New(1))
		}()
	}
}
