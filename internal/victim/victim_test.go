package victim

import (
	"math/big"
	"testing"

	"repro/internal/ec2m"
	"repro/internal/ecdsa"
	"repro/internal/hierarchy"
)

func newVictimHost(t *testing.T) (*hierarchy.Host, *Victim) {
	t.Helper()
	cfg := hierarchy.Scaled(4)
	cfg.NoiseRate = 0
	h := hierarchy.NewHost(cfg, 41)
	v := New(h, 2, ec2m.Sect163(), 42)
	return h, v
}

func TestTriggerSignGroundTruth(t *testing.T) {
	_, v := newVictimHost(t)
	rec := v.TriggerSign(1000, big.NewInt(777))
	if len(rec.Bits) != len(rec.IterStarts) {
		t.Fatalf("bits=%d iterStarts=%d", len(rec.Bits), len(rec.IterStarts))
	}
	want := ecdsa.NonceBits(rec.Nonce)
	if len(want) != len(rec.Bits) {
		t.Fatalf("ladder bits %d, nonce bits %d", len(rec.Bits), len(want))
	}
	for i := range want {
		if want[i] != rec.Bits[i] {
			t.Fatalf("bit %d mismatch", i)
		}
	}
	if rec.LadderAt < rec.Start || rec.End <= rec.LadderAt {
		t.Fatalf("window ordering broken: start=%d ladder=%d end=%d", rec.Start, rec.LadderAt, rec.End)
	}
	// Signature must be reproducible from the recorded nonce.
	sig2, err := v.Key.SignWithNonce(rec.Digest, rec.Nonce, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sig2.R.Cmp(rec.Sig.R) != 0 || sig2.S.Cmp(rec.Sig.S) != 0 {
		t.Fatal("signature does not recompute from ground truth nonce")
	}
}

func TestScheduledFetchesLandOnTargetSet(t *testing.T) {
	h, v := newVictimHost(t)
	rec := v.TriggerSign(1000, big.NewInt(5))
	// Drain everything by advancing past the request end.
	drain := h.NewAgent(3)
	drain.Idle(rec.End + 1_000_000)
	if h.ScheduledLen() != 0 {
		t.Fatalf("%d events left after request end", h.ScheduledLen())
	}
	// The target line must now be SF-tracked by the victim core.
	pa := v.Agent().Translate(v.Layout.TargetLine)
	if !h.InSF(pa) && !h.InLLC(pa) {
		t.Fatal("target line left no trace in the shared hierarchy")
	}
	if v.TargetSet() != h.SetOf(pa) {
		t.Fatal("TargetSet disagrees with the hierarchy mapping")
	}
}

func TestIterationTiming(t *testing.T) {
	_, v := newVictimHost(t)
	rec := v.TriggerSign(0, big.NewInt(9))
	for i := 1; i < len(rec.IterStarts); i++ {
		d := float64(rec.IterStarts[i] - rec.IterStarts[i-1])
		if d < 8000 || d > 12000 {
			t.Fatalf("iteration %d duration %.0f outside the paper's 8k-12k filter", i, d)
		}
	}
}

func TestActiveFraction(t *testing.T) {
	_, v := newVictimHost(t)
	rec := v.TriggerSign(0, big.NewInt(1))
	ladder := float64(rec.IterStarts[len(rec.IterStarts)-1] - rec.IterStarts[0])
	total := float64(rec.End - rec.Start)
	frac := ladder / total
	if frac < 0.15 || frac > 0.4 {
		t.Fatalf("ladder occupies %.2f of the request, want ~0.25", frac)
	}
}

func TestTriggerRequestsCoversWindow(t *testing.T) {
	_, v := newVictimHost(t)
	until := v.RequestDuration() * 3
	recs := v.TriggerRequests(0, until, big.NewInt(3))
	if len(recs) < 2 {
		t.Fatalf("only %d requests scheduled in a 3-request window", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Start < recs[i-1].End {
			t.Fatal("requests overlap")
		}
	}
}
