// Package victim models the victim container of the end-to-end attack
// (§7): a web service that signs requests with the vulnerable OpenSSL
// 1.0.1e ECDSA Montgomery ladder. The signature computation is performed
// for real (internal/ecdsa on sect571r1's field); what this package adds
// is the binding between the ladder's per-iteration control flow and
// instruction fetches on the simulated cache hierarchy, following the
// memory layout of Figure 8:
//
//   - The monitored cache line is fetched at the start of every ladder
//     iteration (the `if (bit)` header executes there).
//   - In the instrumented layout the paper attacks, the same line is
//     fetched again at the midpoint of an iteration when the bit is 0
//     (the else-direction call sequence returns through it), so zero
//     bits show two accesses per iteration and one bits show one (§7.1).
//   - Other lines (the MAdd/MDouble bodies and their data) are fetched
//     every iteration regardless of the bit; they produce the near-target
//     periodic signals that can fool the PSD scanner (§7.2).
//
// One ladder iteration takes a mostly fixed ~9,700 cycles on the paper's
// 2 GHz hosts; the victim schedules its fetches on the shared virtual
// clock accordingly, with small Gaussian spread.
package victim

import (
	"math/big"

	"repro/internal/clock"
	"repro/internal/ec2m"
	"repro/internal/ecdsa"
	"repro/internal/hierarchy"
	"repro/internal/memory"
	"repro/internal/xrand"
)

// Default timing parameters (paper §6.2/§7.1).
const (
	// DefaultIterCycles is the ladder iteration duration.
	DefaultIterCycles = 9700
	// DefaultIterJitter is the Gaussian sigma of iteration durations.
	DefaultIterJitter = 150
	// DefaultActiveFrac is the fraction of request-handling time spent in
	// the vulnerable ladder (§7.2: about 25%).
	DefaultActiveFrac = 0.25
)

// Layout is the victim library's placement of the relevant cache lines
// in its address space.
type Layout struct {
	// TargetLine is the monitored line (Figure 8b's line 2 in the
	// instrumented, else-direction variant).
	TargetLine memory.VAddr
	// HotLines are additional per-iteration lines (MAdd/MDouble code and
	// data) that create plausible false-positive sets for the scanner.
	HotLines []memory.VAddr
	// WarmLines are request-handling (non-ladder) lines touched during
	// the preamble/postamble of each request.
	WarmLines []memory.VAddr
}

// Victim is one victim container instance.
type Victim struct {
	h     *hierarchy.Host
	agent *hierarchy.Agent
	rng   *xrand.Rand

	Curve  *ec2m.Curve
	Key    *ecdsa.PrivateKey
	Layout Layout

	IterCycles float64
	IterJitter float64
	ActiveFrac float64
}

// SignRecord is the ground truth of one signing request: the signature,
// the nonce, the ladder bits in visit order, and the scheduled start time
// of every iteration.
type SignRecord struct {
	Digest     *big.Int
	Sig        ecdsa.Signature
	Nonce      *big.Int
	Bits       []uint
	IterStarts []clock.Cycles
	LadderAt   clock.Cycles // first iteration start
	Start, End clock.Cycles // whole request window
}

// New creates a victim on the given core with a fresh address space and
// key pair on the curve.
func New(h *hierarchy.Host, core int, curve *ec2m.Curve, seed uint64) *Victim {
	rng := xrand.New(seed)
	agent := h.NewAgent(core)
	v := &Victim{
		h: h, agent: agent, rng: rng,
		Curve:      curve,
		Key:        ecdsa.GenerateKey(curve, rng),
		IterCycles: DefaultIterCycles,
		IterJitter: DefaultIterJitter,
		ActiveFrac: DefaultActiveFrac,
	}
	// The library is loaded once at container start and keeps its VA→PA
	// mapping for the container's lifetime (§7.1). One page holds the
	// ladder code (target + hot lines at fixed offsets), a second holds
	// request-handling code.
	lib := agent.Alloc(2)
	v.Layout.TargetLine = lib.LineAt(0, 0x2c0) // arbitrary fixed offset
	for _, off := range []uint64{0x300, 0x380, 0x440} {
		v.Layout.HotLines = append(v.Layout.HotLines, lib.LineAt(0, off))
	}
	for _, off := range []uint64{0x080, 0x500} {
		v.Layout.WarmLines = append(v.Layout.WarmLines, lib.LineAt(1, off))
	}
	return v
}

// Agent returns the victim's agent (privileged; experiments use it for
// ground-truth set resolution).
func (v *Victim) Agent() *hierarchy.Agent { return v.agent }

// TargetOffset returns the page offset of the monitored line — the
// information the PageOffset attacker derives from the public binary.
func (v *Victim) TargetOffset() uint64 { return v.Layout.TargetLine.PageOffset() }

// TargetSet returns the monitored line's LLC/SF set (privileged ground
// truth for scoring scans).
func (v *Victim) TargetSet() hierarchy.SetID { return v.agent.SetOf(v.Layout.TargetLine) }

// schedule enqueues one victim code fetch.
func (v *Victim) schedule(t clock.Cycles, va memory.VAddr) {
	v.h.Schedule(hierarchy.Event{
		Time: t,
		Core: v.agent.Core(),
		PA:   v.agent.Translate(va),
	})
}

// TriggerSign runs one signing request starting at the given virtual
// time: a preamble of request handling, the vulnerable ladder, and a
// postamble, sized so the ladder occupies ActiveFrac of the request.
// All cache activity is scheduled on the host's event queue; the ground
// truth is returned immediately.
func (v *Victim) TriggerSign(at clock.Cycles, digest *big.Int) *SignRecord {
	nonce := ecdsa.RandScalar(v.Curve.N, v.rng)
	return v.TriggerSignWithNonce(at, digest, nonce)
}

// TriggerSignWithNonce is TriggerSign with a caller-chosen nonce.
func (v *Victim) TriggerSignWithNonce(at clock.Cycles, digest, nonce *big.Int) *SignRecord {
	rec := &SignRecord{Digest: digest, Nonce: nonce, Start: at}

	// Execute the real signer; the hook only collects the bit sequence
	// (the computation is instantaneous in virtual time — its cost is
	// modelled by the schedule below).
	sig, err := v.Key.SignWithNonce(digest, nonce, func(s ec2m.LadderStep) {
		rec.Bits = append(rec.Bits, s.Bit)
	})
	if err != nil {
		// Unusable nonce: the service would redraw; keep the record
		// honest by re-triggering with a fresh nonce.
		return v.TriggerSign(at, digest)
	}
	rec.Sig = sig

	ladderDur := v.IterCycles * float64(len(rec.Bits))
	totalDur := ladderDur / v.ActiveFrac
	// The ladder sits at a uniformly random position inside the request
	// window — the attacker cannot synchronize with it (§7.2).
	slack := totalDur - ladderDur
	preDur := v.rng.Float64() * slack
	ladderAt := at + clock.Cycles(preDur)
	rec.LadderAt = ladderAt

	// Preamble/postamble: sparse warm-line activity.
	for t := float64(at); t < float64(at)+totalDur; t += 12000 {
		line := v.Layout.WarmLines[int(t/12000)%len(v.Layout.WarmLines)]
		v.schedule(clock.Cycles(t), line)
	}

	// The ladder itself.
	t := float64(ladderAt)
	for _, bit := range rec.Bits {
		dur := v.rng.Norm(v.IterCycles, v.IterJitter)
		if dur < v.IterCycles/2 {
			dur = v.IterCycles / 2
		}
		start := clock.Cycles(t)
		rec.IterStarts = append(rec.IterStarts, start)
		// Iteration header: the `if (bit)` line.
		v.schedule(start, v.Layout.TargetLine)
		// Per-iteration hot lines (MAdd/MDouble bodies), both branch
		// directions touch them.
		v.schedule(start+clock.Cycles(dur*0.25), v.Layout.HotLines[0])
		v.schedule(start+clock.Cycles(dur*0.6), v.Layout.HotLines[1])
		v.schedule(start+clock.Cycles(dur*0.85), v.Layout.HotLines[2])
		if bit == 0 {
			// Instrumented layout: the else direction re-fetches the
			// monitored line at the iteration midpoint (§7.1).
			v.schedule(start+clock.Cycles(dur*0.5), v.Layout.TargetLine)
		}
		t += dur
	}
	rec.End = clock.Cycles(t + (totalDur - preDur - ladderDur))
	return rec
}

// TriggerRequests keeps the victim busy with back-to-back signing
// requests covering [at, until), returning all ground-truth records.
func (v *Victim) TriggerRequests(at, until clock.Cycles, digest *big.Int) []*SignRecord {
	var recs []*SignRecord
	t := at
	for t < until {
		rec := v.TriggerSign(t, digest)
		recs = append(recs, rec)
		gap := clock.Cycles(v.rng.Float64() * 50000)
		t = rec.End + gap
	}
	return recs
}

// RequestDuration returns the expected duration of one request.
func (v *Victim) RequestDuration() clock.Cycles {
	bits := v.Curve.N.BitLen() - 1
	return clock.Cycles(v.IterCycles * float64(bits) / v.ActiveFrac)
}

// ExpectedAccessPeriod returns the victim's characteristic access period
// to the target line: about half an iteration (§6.2 — the midpoint
// access of zero bits halves the period), i.e. ~4,850 cycles, giving the
// 0.41 MHz base frequency of Figure 7.
func (v *Victim) ExpectedAccessPeriod() float64 { return v.IterCycles / 2 }
