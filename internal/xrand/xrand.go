// Package xrand provides a deterministic, seedable pseudo-random number
// generator and the distribution samplers used throughout the simulator.
//
// All randomness in the repository flows from this package so that every
// experiment is reproducible bit-for-bit given a seed. The generator is
// xoshiro256**, seeded through splitmix64 as recommended by its authors.
package xrand

import (
	"math"
	"math/bits"
)

// Rand is a deterministic pseudo-random source. It is NOT safe for
// concurrent use; derive independent sub-streams with Split instead of
// sharing one Rand across goroutines.
type Rand struct {
	s [4]uint64

	// expMemo caches exp(-mean) for Poisson. The simulation draws Poisson
	// counts with a small set of recurring means (per-set noise windows are
	// quantized to integer cycle counts times a fixed rate), so a tiny
	// direct-mapped memo removes the math.Exp call from the hot path
	// without changing a single output: exp is a pure function of the mean.
	// The memo is lazily allocated on the first Poisson draw and survives
	// Seed — it holds no stream state.
	expMemo *expMemo
}

// expMemoSize is the number of direct-mapped exp(-mean) memo slots. Must
// be a power of two.
const expMemoSize = 256

// expMemo is a direct-mapped cache from math.Float64bits(mean) to
// exp(-mean). A zero key marks an empty slot (mean 0 never reaches the
// memo: Poisson returns early for mean <= 0).
type expMemo struct {
	keys [expMemoSize]uint64
	vals [expMemoSize]float64
}

// expNeg returns exp(-mean) through the memo.
func (r *Rand) expNeg(mean float64) float64 {
	m := r.expMemo
	if m == nil {
		m = &expMemo{}
		r.expMemo = m
	}
	k := math.Float64bits(mean)
	idx := (k * 0x9e3779b97f4a7c15) >> (64 - 8) // fibonacci hash to 8 bits
	if m.keys[idx] == k {
		return m.vals[idx]
	}
	v := math.Exp(-mean)
	m.keys[idx] = k
	m.vals[idx] = v
	return v
}

// splitmix64 advances the 64-bit state and returns the next output. It is
// used for seeding so that similar seeds yield unrelated xoshiro states.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Stream returns the i-th output of the splitmix64 stream rooted at base.
// Neighbouring indices yield statistically unrelated values, so the stream
// is suitable for deriving independent per-trial seeds: workers can pull
// seed i without generating seeds 0..i-1 first, which keeps parallel and
// sequential trial schedules on identical randomness.
func Stream(base, i uint64) uint64 {
	state := base + i*0x9e3779b97f4a7c15
	return splitmix64(&state)
}

// New returns a generator seeded from the given seed.
func New(seed uint64) *Rand {
	r := &Rand{}
	r.Seed(seed)
	return r
}

// Seed re-initializes the generator in place to the state New(seed)
// would produce. It exists so long-lived owners (pooled hosts, tenant
// models) can re-derive their streams on reset without allocating.
func (r *Rand) Seed(seed uint64) {
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// xoshiro must not start from the all-zero state; splitmix64 cannot
	// produce four zero outputs in a row, so this is just defensive.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split returns a new generator whose stream is statistically independent
// of the receiver's. The receiver is advanced.
func (r *Rand) Split() *Rand {
	return New(r.Uint64() ^ 0xd3833e804f4c574b)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform integer in [0, n) using Lemire's method.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with zero n")
	}
	// Multiply-shift with rejection to remove modulo bias.
	for {
		hi, lo := bits.Mul64(r.Uint64(), n)
		if lo >= n || lo >= (-n)%n {
			return hi
		}
	}
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns a fair coin flip.
func (r *Rand) Bool() bool { return r.Uint64()&1 == 1 }

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles the slice in place (Fisher–Yates).
func (r *Rand) ShuffleInts(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Shuffle shuffles n elements using the provided swap function.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Exp returns an exponentially distributed sample with the given rate
// (mean 1/rate).
func (r *Rand) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("xrand: Exp with non-positive rate")
	}
	u := r.Float64()
	// 1-u is in (0,1]; avoid log(0).
	return -math.Log(1-u) / rate
}

// Poisson returns a Poisson-distributed sample with the given mean.
// It uses Knuth's method for small means and a normal approximation with
// rejection-free rounding for large means (mean > 64), which is accurate
// enough for background-noise counts where only the bulk matters.
func (r *Rand) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		// Normal approximation N(mean, mean), clamped at zero.
		v := r.Norm(mean, math.Sqrt(mean))
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := r.expNeg(mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Norm returns a Gaussian sample with the given mean and standard
// deviation, using the Box–Muller transform.
func (r *Rand) Norm(mean, stddev float64) float64 {
	u1 := r.Float64()
	u2 := r.Float64()
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Bytes fills b with random bytes.
func (r *Rand) Bytes(b []byte) {
	i := 0
	for ; i+8 <= len(b); i += 8 {
		v := r.Uint64()
		for j := 0; j < 8; j++ {
			b[i+j] = byte(v >> (8 * j))
		}
	}
	if i < len(b) {
		v := r.Uint64()
		for ; i < len(b); i++ {
			b[i] = byte(v)
			v >>= 8
		}
	}
}
