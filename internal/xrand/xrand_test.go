package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between different seeds", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	a := New(7)
	b := a.Split()
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		seen[a.Uint64()] = true
	}
	for i := 0; i < 1000; i++ {
		if seen[b.Uint64()] {
			t.Fatal("split stream collided with parent")
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(4)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestUniformity(t *testing.T) {
	r := New(5)
	const buckets = 16
	counts := make([]int, buckets)
	const n = 160000
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	want := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d deviates from %f", b, c, want)
		}
	}
}

func TestExpMean(t *testing.T) {
	r := New(6)
	const rate = 0.5
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Exp(rate)
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.05 {
		t.Fatalf("exponential mean %.3f, want %.3f", mean, 1/rate)
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(7)
	for _, mean := range []float64{0.5, 4, 30, 200} {
		sum := 0.0
		const n = 20000
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(mean))
		}
		got := sum / n
		if math.Abs(got-mean) > 4*math.Sqrt(mean/n)*10+0.1 {
			t.Fatalf("poisson(%v) mean = %.3f", mean, got)
		}
	}
}

func TestPoissonZeroAndNegative(t *testing.T) {
	r := New(8)
	if r.Poisson(0) != 0 || r.Poisson(-1) != 0 {
		t.Fatal("non-positive means must yield 0")
	}
}

func TestNormMoments(t *testing.T) {
	r := New(9)
	const n = 100000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Norm(10, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("mean %.3f, want 10", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Fatalf("stddev %.3f, want 2", math.Sqrt(variance))
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(10)
	f := func(n uint8) bool {
		m := int(n%64) + 1
		p := r.Perm(m)
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBytesFills(t *testing.T) {
	r := New(11)
	for _, n := range []int{0, 1, 7, 8, 9, 64, 71} {
		b := make([]byte, n)
		r.Bytes(b)
		if n >= 16 {
			zero := 0
			for _, v := range b {
				if v == 0 {
					zero++
				}
			}
			if zero == n {
				t.Fatalf("Bytes left a %d-byte buffer all zero", n)
			}
		}
	}
}

func TestStreamIsSplitmixSequence(t *testing.T) {
	// Stream(base, i) must equal the i-th draw of a sequential splitmix64
	// generator rooted at base, so random-access and sequential seed
	// derivation agree.
	const base = uint64(0xabcdef)
	state := base
	for i := uint64(0); i < 100; i++ {
		want := splitmix64(&state)
		if got := Stream(base, i); got != want {
			t.Fatalf("Stream(%#x, %d) = %#x, want %#x", base, i, got, want)
		}
	}
	seen := map[uint64]bool{}
	for i := uint64(0); i < 1000; i++ {
		seen[Stream(1, i)] = true
	}
	if len(seen) != 1000 {
		t.Fatalf("Stream collided: %d distinct of 1000", len(seen))
	}
}

// poissonRef is the pre-memo Poisson implementation: identical algorithm,
// but always calling math.Exp. The memoized hot path must reproduce its
// draws bit-for-bit — the memo may only skip recomputing a pure function.
func poissonRef(r *Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		v := r.Norm(mean, math.Sqrt(mean))
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

func TestPoissonExpMemoExactness(t *testing.T) {
	// Interleave recurring and fresh means (memo hits, misses and slot
	// evictions) and check counts and stream state match the reference on
	// two generators advancing in lockstep.
	a, b := New(42), New(42)
	meanSrc := New(7)
	recurring := []float64{0.001, 0.575, 3.25, 70.5, 64.0001}
	for i := 0; i < 20000; i++ {
		var mean float64
		switch {
		case i%3 == 0:
			mean = recurring[i%len(recurring)]
		case i%3 == 1:
			mean = meanSrc.Float64() * 10
		default:
			mean = meanSrc.Float64() * 100 // exercises the Norm branch too
		}
		got, want := a.Poisson(mean), poissonRef(b, mean)
		if got != want {
			t.Fatalf("draw %d (mean %g): memoized Poisson = %d, reference = %d", i, mean, got, want)
		}
	}
	if a.Uint64() != b.Uint64() {
		t.Fatal("memoized Poisson desynchronized the generator stream")
	}
}

func TestPoissonMemoSurvivesSeed(t *testing.T) {
	// Seed re-derives stream state but must not invalidate memo
	// correctness: the memo is keyed on the mean alone.
	r := New(1)
	r.Poisson(2.5)
	r.Seed(99)
	fresh := New(99)
	for i := 0; i < 100; i++ {
		if got, want := r.Poisson(2.5), fresh.Poisson(2.5); got != want {
			t.Fatalf("draw %d after Seed: got %d, want %d", i, got, want)
		}
	}
}
